"""CracSession: end-to-end launch / checkpoint / kill / restart.

The session owns the split process, the trampoline backend, the DMTCP
checkpointer with the CRAC plugin, and the coordinator. Its
:meth:`restart` implements the paper's restart path:

1. a fresh process is created and a **new lower-half helper** is loaded
   (same deterministic layout: ASLR disabled, same platform);
2. DMTCP restores the upper-half memory from the image at the original
   addresses;
3. the trampoline is re-pointed at the fresh entry-point table;
4. the full cudaMalloc-family log is replayed so every active allocation
   reappears at its original address (divergence aborts the restart);
5. active ``cudaHostAlloc`` buffers are re-registered (their bytes came
   back with the upper half);
6. fat binaries are re-registered and handles patched (§3.2.5);
7. device/managed memory is refilled from the staged blobs over PCIe;
8. application-held stream/event handles are adopted by the fresh
   library ("CRAC needs to recreate streams", §4.4.2).

Because steps 4–8 restore every pointer and handle the application
holds, the (simulated) application object simply continues running —
exactly the transparency argument of the paper.

This module also hosts the **runtime fault domain** (PR 3): a
virtual-time :class:`Watchdog` that bounds kernel/copy/sync latency, and
a :class:`FaultDomain` escalation ladder guarding every runtime call the
dispatch backend issues. The ladder's rungs, cheapest first:

1. **retry** — re-issue the failed call after seeded exponential
   backoff with jitter (retryable errors: transfer CRC mismatch, UVM
   fault storm);
2. **stream reset + replay** — reset the poisoned stream(s) and
   re-enqueue their unsynchronized window from the device's
   :class:`~repro.core.replay_log.StreamOpLog` (sticky errors: hung
   kernel, stalled copy engine);
3. **device reset + restore** — kill the process, restore from the
   newest usable checkpoint generation (:meth:`CracSession.\
restart_latest`), charge the re-executed work back to the clock, and
   re-apply the pre-fault buffer contents (deterministic redo);
4. **node failover** (PR 6, when a cluster fabric installs a
   ``failover_handler``) — the node itself is dying: restore the
   latest generation *shipped* to a surviving node
   (``repro.cluster``), with the same deterministic-redo accounting;
5. **typed abort** — :class:`~repro.errors.RecoveryAbortedError`
   carrying the full :class:`RecoveryReport` attempt trail.

Every rung is bounded per failure episode, so ladder recovery always
terminates — the property the hypothesis suite checks.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.halves import SplitProcess
from repro.core.plugin import CracPlugin
from repro.core.replay_log import ReplayLog, StreamOpLog
from repro.core.trampoline import CracBackend
from repro.cuda.errors import CudaErrorCode, cuda_error
from repro.dmtcp.checkpointer import DmtcpCheckpointer
from repro.dmtcp.coordinator import DmtcpCoordinator
from repro.dmtcp.forked import ForkedCheckpoint
from repro.dmtcp.image import CheckpointImage
from repro.dmtcp.store import CheckpointStore
from repro.errors import (
    CheckpointStoreError,
    CorruptCheckpointError,
    CudaError,
    InjectedFault,
    RecoveryAbortedError,
    RestartError,
    SpeculationAbortedError,
)
from repro.gpu.device import GpuDevice
from repro.gpu.streams import Stream
from repro.gpu.timing import (
    DEFAULT_HOST_COSTS,
    DEFAULT_WATCHDOG_LIMITS,
    NS_PER_S,
    HostCosts,
    WatchdogLimits,
)
from repro.gpu.uvm import UVM_PAGE, ManagedBuffer
from repro.linux.loader import ProgramImage
from repro.spec import HandleTable

if TYPE_CHECKING:  # core must not import harness at runtime
    from repro.harness.fault_injection import FaultInjector


@dataclass
class RestartAttempt:
    """One try of the self-healing restart loop (success or failure)."""

    generation: int
    attempt: int  # 1-based try index within this generation
    backoff_ns: float  # virtual-time backoff paid before this try
    error: str | None  # repr of the failure, None on success
    succeeded: bool = False


@dataclass
class RestartReport:
    """What the restart did, and what it cost (virtual time)."""

    restart_time_ns: float
    replayed_calls: int
    refilled_bytes: int
    reregistered_fatbins: int
    adopted_streams: int
    adopted_events: int
    #: Store generation the successful restore came from (``None`` for a
    #: direct ``restart(image)`` that bypassed the store).
    generation: int | None = None
    #: Full attempt trail of :meth:`CracSession.restart_latest`,
    #: including the failed tries that preceded this success.
    attempts: list[RestartAttempt] = field(default_factory=list)

    @property
    def backoff_ns(self) -> float:
        """Total virtual-time backoff paid across failed attempts."""
        return sum(a.backoff_ns for a in self.attempts)


class CracSession:
    """A CUDA application running under CRAC."""

    def __init__(
        self,
        *,
        gpu: str = "V100",
        app_image: ProgramImage | None = None,
        fsgsbase: bool = False,
        seed: int = 0,
        n_gpus: int = 1,
        costs: HostCosts = DEFAULT_HOST_COSTS,
        full_arena_checkpoint: bool = False,
        address_virtualization: bool = False,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        self.gpu = gpu
        self.seed = seed
        self.fsgsbase = fsgsbase
        self.n_gpus = n_gpus
        self.costs = costs
        self.app_image = app_image
        self.fault_injector = fault_injector
        self.split = SplitProcess(
            gpu=gpu, app_image=app_image, fsgsbase=fsgsbase, seed=seed,
            n_gpus=n_gpus,
        )
        self.backend = CracBackend(
            self.split.runtime, costs,
            virtualize_addresses=address_virtualization,
        )
        # DMTCP + CRAC launch-time overhead (helper load, entry table,
        # coordinator handshake) — significant for short-running apps.
        self.process.advance(costs.crac_startup_ns)
        self.plugin = CracPlugin(self, full_arena=full_arena_checkpoint)
        #: per-resource version table backing speculative checkpoints;
        #: devices and the trampoline bump it on every mutating op
        self.handle_table = HandleTable()
        self.checkpointer = DmtcpCheckpointer(
            self.process, [self.plugin], costs, fault_injector=fault_injector
        )
        self.checkpointer.handle_table = self.handle_table
        self.backend.handle_table = self.handle_table
        self.coordinator = DmtcpCoordinator(self.checkpointer, seed=seed)
        self.backend.coordinator = self.coordinator
        self.restarts: list[RestartReport] = []
        #: forked checkpoints whose background image write has not been
        #: finished yet (at most one in practice — a new checkpoint first
        #: drains the previous write)
        self.pending_forks: list[ForkedCheckpoint] = []
        #: escalation ladder guarding runtime calls (enable_fault_domain)
        self.fault_domain: FaultDomain | None = None
        #: hazard analyzer following the runtime across restarts
        #: (enable_sanitizer); None = no instrumentation
        self.sanitizer = None
        #: span/metrics tracer following the runtime across restarts
        #: (enable_trace); None = no instrumentation
        self.tracer = None
        #: nvprof stand-in re-attached across restarts (enable_profiler)
        self.profiler = None
        # Runtime fault stages (ecc, kernel-hang, ...) are tripped by the
        # devices themselves; without a fault domain the resulting
        # classified CudaError propagates raw to the application.
        for dev in self.split.runtime.devices:
            dev.fault_injector = fault_injector
            dev.handle_table = self.handle_table

    def enable_fault_domain(
        self,
        store: CheckpointStore | None = None,
        *,
        retries: int = 3,
        max_stream_resets: int = 2,
        max_restores: int = 2,
        max_failovers: int = 1,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        limits: WatchdogLimits = DEFAULT_WATCHDOG_LIMITS,
    ) -> "FaultDomain":
        """Attach the escalation ladder (module docstring) to this session.

        ``store`` feeds the restore rung; without one the ladder tops out
        at stream resets — unless a cluster installs a
        ``failover_handler`` on the returned domain, which adds the
        fourth (node-failover) rung. Returns the attached
        :class:`FaultDomain`.
        """
        self.fault_domain = FaultDomain(
            self, store, retries=retries,
            max_stream_resets=max_stream_resets, max_restores=max_restores,
            max_failovers=max_failovers,
            backoff_s=backoff_s, max_backoff_s=max_backoff_s, limits=limits,
        )
        return self.fault_domain

    def enable_sanitizer(self, sanitizer=None):
        """Attach a :class:`repro.sanitizer.Sanitizer` (created if not
        given) to the live runtime; it re-attaches across restarts."""
        if sanitizer is None:
            from repro.sanitizer import Sanitizer

            sanitizer = Sanitizer()
        self.sanitizer = sanitizer
        sanitizer.attach(self.split.runtime)
        return sanitizer

    def enable_trace(self, tracer=None):
        """Attach a :class:`repro.trace.Tracer` (created if not given) to
        the dispatch backend; it re-attaches across restarts with a new
        splice segment, keeping the logical timeline monotone."""
        if tracer is None:
            from repro.trace import Tracer

            tracer = Tracer()
        self.tracer = tracer
        tracer.attach(self.backend)
        self.checkpointer.tracer = tracer
        return tracer

    def enable_profiler(self, profiler=None):
        """Attach an :class:`~repro.cuda.profiler.Nvprof` (created if not
        given); restarts fold its window forward and splice its device
        timeline instead of losing them."""
        if profiler is None:
            from repro.cuda.profiler import Nvprof

            profiler = Nvprof()
        self.profiler = profiler
        profiler.attach(self.backend)
        return profiler

    # -- conveniences ------------------------------------------------------------

    def __enter__(self) -> "CracSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.process.alive:
            self.kill()

    @property
    def process(self):
        return self.split.process

    @property
    def runtime(self):
        return self.split.runtime

    @property
    def device(self) -> GpuDevice:
        return self.split.device

    # -- checkpoint ----------------------------------------------------------------

    def checkpoint(
        self,
        *,
        gzip: bool = False,
        incremental: bool = False,
        parent: CheckpointImage | None = None,
        store: CheckpointStore | None = None,
        forked: bool = False,
        speculative: bool = False,
    ) -> CheckpointImage:
        """Take a checkpoint now (drain → stage → dump upper half).

        ``incremental=True`` saves only host pages *and GPU buffer
        spans* dirtied since ``parent``. With ``store`` the image goes
        through the store's two-phase commit and becomes a restorable
        generation. ``forked=True`` moves the image write (and the
        commit point) onto a background timeline: the app resumes right
        after quiesce + snapshot, pays copy-on-write for bytes it
        touches inside the write window, and the write completes at
        :meth:`finish_forked_checkpoints` (called automatically before
        the next checkpoint and at kill). ``speculative=True`` skips
        the quiesce too — kernels keep launching through the capture
        window and the cut is *validated* at finish time against the
        handle-version table; a rolled-back speculation falls back to
        the forked path automatically (same cut parameters)."""
        # Only one background write at a time: drain the previous one
        # first (usually long done — residual wait is then zero).
        self.finish_forked_checkpoints()
        image = self.coordinator.checkpoint(
            gzip=gzip, incremental=incremental, parent=parent, store=store,
            forked=forked, speculative=speculative,
        )
        if forked or speculative:
            writer = image.forked_writer
            if speculative:
                # Remembered so an aborted speculation can re-issue the
                # same cut through the stop-the-world forked path.
                writer.fallback_kwargs = dict(
                    gzip=gzip, incremental=incremental, parent=parent,
                    store=store,
                )
            self.pending_forks.append(writer)
        return image

    def finish_forked_checkpoints(self, *, block: bool = True) -> None:
        """Complete every pending forked/speculative image write (COW or
        validation charge + commit). A failure aborts that write — its
        image never commits, dirty bits stay intact — and propagates,
        except a rolled-back *speculation*, which falls back cleanly to
        a forked checkpoint of the same cut parameters."""
        while self.pending_forks:
            writer = self.pending_forks.pop(0)
            try:
                writer.finish(
                    self.process if self.process.alive else None, block=block
                )
            except SpeculationAbortedError:
                fallback = getattr(writer, "fallback_kwargs", None)
                if fallback is None or not self.process.alive:
                    raise
                # The aborted cut left every dirty bit intact, so the
                # forked re-issue captures the same (now slightly newer)
                # state the stop-the-world path would have. Its writer
                # joins pending_forks and drains in this same loop.
                self.checkpoint(forked=True, **fallback)

    def abort_pending_writers(self) -> None:
        """Tear down in-flight background writers without committing.

        The fault-domain ladder calls this before killing the process:
        recovery rolls back to an already-committed generation, so an
        in-flight write must release its snapshot epochs (dirty bits
        stay intact) rather than commit a cut that post-dates the
        recovery line. Idempotent per writer."""
        while self.pending_forks:
            self.pending_forks.pop(0).abort()

    def kill(self) -> None:
        """Terminate the original process (device state is lost).

        A forked image write survives the parent's death (the child
        process owns it — CRUM's model); its COW cost is charged to the
        parent before death but nobody waits out the write window."""
        if self.pending_forks:
            self.finish_forked_checkpoints(block=False)
        self.process.kill()
        self.runtime.destroy()

    # -- restart ----------------------------------------------------------------------

    def restart(
        self,
        image: CheckpointImage,
        *,
        allow_heterogeneous: bool = False,
    ) -> RestartReport:
        """Restart from ``image`` in a brand-new process (see module doc).

        ``allow_heterogeneous`` opts into restoring an image captured on
        a *different GPU model* (the migration/failover path): because
        restore is replay-based — the malloc log is re-executed and
        buffer contents are refilled over PCIe, rather than any device
        context being resurrected — the target only needs enough device
        memory for the active allocations. GPU count must still match
        (stream handles are bound to device indices), and the target's
        capacity is checked before anything is torn down.
        """
        platform = image.blobs.get("crac/platform")
        if platform is not None and not self.backend.virtualize_addresses:
            want = platform.payload
            from repro.gpu.timing import GPU_SPECS

            have_spec = GPU_SPECS[self.gpu]
            mismatch = (
                want["gpu"] != have_spec.name
                or want["n_gpus"] != self.n_gpus
            )
            heterogeneous_ok = (
                allow_heterogeneous and want["n_gpus"] == self.n_gpus
            )
            if mismatch and not heterogeneous_ok:
                raise RestartError(
                    "restart platform mismatch: image was taken on "
                    f"{want['n_gpus']}× {want['gpu']}, restarting on "
                    f"{self.n_gpus}× {have_spec.name} — CRAC's replay "
                    "determinism requires the same CUDA/GPU platform "
                    "(§3.2.4)"
                )
            if mismatch:
                # Heterogeneous restore: replay recreates every active
                # allocation on the target, so its device memory must
                # hold them all — checked up front, before the old
                # process state is discarded.
                log = image.blob("crac/replay-log")
                need = sum(
                    e.nbytes
                    for e in log.active_allocations().values()
                    if e.op != "host_alloc"
                )
                if need > have_spec.memory_bytes:
                    raise RestartError(
                        f"heterogeneous restore does not fit: image holds "
                        f"{need} bytes of device/managed allocations, "
                        f"{have_spec.name} has {have_spec.memory_bytes}"
                    )
        old_clock = self.process.clock_ns
        old_devices = list(self.split.runtime.devices)
        fresh = SplitProcess(
            gpu=self.gpu,
            app_image=self.app_image,
            fsgsbase=self.fsgsbase,
            seed=self.seed,
            n_gpus=self.n_gpus,
            load_upper=False,
        )
        proc = fresh.process
        proc.advance(self.costs.restart_bootstrap_ns)

        # 2. Restore upper-half memory at original addresses; the
        #    restored ranges are re-registered as upper-owned.
        restore_cost = self.checkpointer.restore_memory(image, proc)
        proc.advance(restore_cost)
        if self.fault_injector is not None:
            # Mid-restore crash: upper half is mapped but the lower half
            # is not rebuilt yet — the restarted process is unusable and
            # the orchestrator must retry (or fall back a generation).
            self.fault_injector.check("restore", f"pid {image.pid}")
        for saved in image.regions:
            fresh.loader._track("upper", saved.start, saved.size)

        # 3. Re-point the trampoline at the fresh lower half.
        self.backend.swap_runtime(fresh.runtime)

        # 4. Replay the allocation log. In the baseline design address
        #    determinism is verified; under address virtualization (the
        #    §3.2.4 future-work mode) divergence is tolerated and the
        #    virtual-pointer table is patched instead.
        log = image.blob("crac/replay-log")
        if self.fault_injector is not None:
            # kind="divergence" raises ReplayDivergenceError here, the
            # §3.2.4 failure mode (ASLR left on / different platform).
            self.fault_injector.check("replay", f"{len(log.entries)} calls")
        if self.backend.virtualize_addresses:
            translation = log.replay(fresh.runtime, strict=False)
            replayed = len(log.entries)
        else:
            replayed = log.replay(fresh.runtime)
            translation = {}
        proc.advance(replayed * self.costs.replay_call_ns)

        # 5. Re-register active cudaHostAlloc buffers (bytes already in
        #    the restored upper half).
        buffers = image.blob("crac/buffers")
        active = log.active_allocations()
        for addr, entry in active.items():
            if entry.op == "host_alloc":
                fresh.runtime.cudaHostRegister(addr, entry.nbytes)
                # The registered pages are already mapped (restored with
                # the upper half); the fresh hostalloc arena must never
                # hand them out again.
                fresh.runtime._hostalloc_alloc.reserve(addr, entry.nbytes)
                proc.advance(self.costs.replay_call_ns)

        # Sanity: every staged buffer must exist again (possibly moved).
        missing = [
            a
            for a in buffers
            if translation.get(a, a) not in fresh.runtime.buffers
        ]
        if missing:
            raise RestartError(
                f"replay did not recreate buffers at {[hex(a) for a in missing]}"
            )

        # 6. Fat binaries: re-register and patch handles.
        patches = self.backend.reregister_fatbins()

        # 7. Refill contents of active allocations; device/managed bytes
        #    cross PCIe again. GPU deltas chain like host dirty pages:
        #    walk the image chain base-first and overlay each image's
        #    staged spans. A full entry — or a uid change, meaning the
        #    arena reused the address for a *different* allocation —
        #    resets the merge so stale bytes never leak across a free.
        refill_bytes = 0
        for addr, final_entry in buffers.items():
            seq: list[dict] = []
            for img in image.chain():
                blob = img.blobs.get("crac/buffers")
                if blob is None or addr not in blob.payload:
                    continue
                entry = blob.payload[addr]
                if (
                    entry.get("delta")
                    and seq
                    and seq[-1].get("uid") == entry.get("uid")
                ):
                    seq.append(entry)
                else:
                    # Full snapshot, or a delta of a fresh allocation
                    # (its pre-history is the replay-created zero-filled
                    # buffer, which is exactly the fresh state).
                    seq = [entry]
            buf = fresh.runtime.buffers[translation.get(addr, addr)]
            for entry in seq:
                if entry.get("delta"):
                    buf.contents.apply_delta(entry["snapshot"])
                else:
                    buf.contents.restore(entry["snapshot"])
                if "pcie_bytes" in entry:
                    refill_bytes += entry["pcie_bytes"]
                elif entry["kind"] == "device":
                    refill_bytes += entry["size"]
                elif entry["kind"] == "managed":
                    # Image written before pcie_bytes existed: mirror the
                    # old accounting (device-resident pages cross PCIe).
                    refill_bytes += (
                        int((entry["residency"] == 1).sum()) * UVM_PAGE
                    )
            if final_entry["kind"] == "managed":
                assert isinstance(buf, ManagedBuffer)
                buf.residency[:] = final_entry["residency"]
            # The refilled contents *are* the committed cut's state.
            buf.contents.clear_dirty()
        proc.advance(refill_bytes / fresh.device.spec.pcie_bw * NS_PER_S)

        # Restore the application's cudaSetDevice state (replay may have
        # left a different device current).
        want_device = image.blobs.get("crac/current-device")
        if want_device is not None and fresh.runtime.current_device != want_device.payload:
            fresh.runtime.cudaSetDevice(want_device.payload)

        # Patch the application's virtual pointers onto the (possibly
        # moved) real allocations.
        if translation:
            self.backend.patch_translation(translation)

        # 8. Recreate streams/events: adopt the app-held handles. The
        #    handles may carry state from the *dead* process's timeline —
        #    a poison flag from a post-checkpoint fault, a ready_ns
        #    inflated by a hung kernel. The checkpoint quiesced every
        #    stream before capture, so none of it describes restored
        #    work: rebaseline each handle to the fresh clock or the first
        #    post-restore sync fires a spurious watchdog trip (the
        #    migration-onto-a-new-node bug).
        for stream in self.backend.live_streams.values():
            fresh.runtime.devices[stream.device_index].rebaseline_stream(
                stream, proc.clock_ns
            )
            fresh.runtime.adopt_stream(stream)
            proc.advance(self.costs.replay_call_ns)
        for event in self.backend.live_events.values():
            fresh.runtime.adopt_event(event)

        restart_time = proc.clock_ns
        # The session continues in the new process; keep virtual time
        # monotone across the kill/restart boundary.
        proc.advance_to(old_clock + restart_time)

        self.split = fresh
        self.checkpointer = DmtcpCheckpointer(
            proc, [self.plugin], self.costs, fault_injector=self.fault_injector
        )
        self.checkpointer.handle_table = self.handle_table
        self.coordinator = DmtcpCoordinator(self.checkpointer, seed=self.seed)
        self.backend.coordinator = self.coordinator
        # Re-wire the runtime fault domain and the speculative version
        # table into the fresh devices.
        for dev in fresh.runtime.devices:
            dev.fault_injector = self.fault_injector
            dev.handle_table = self.handle_table
        if self.fault_domain is not None:
            self.fault_domain.attach()
        if self.sanitizer is not None:
            # Vector clocks and buffer histories survive the restart; the
            # fresh runtime just becomes the new event source.
            self.sanitizer.attach(fresh.runtime)
        if self.tracer is not None:
            # Recorded spans survive; the fresh runtime becomes the new
            # event source and subsequent spans land in a new segment.
            self.tracer.begin_segment("restart", self.process.clock_ns)
            self.tracer.attach(self.backend)
            self.checkpointer.tracer = self.tracer
            self.tracer.recovery_span(
                "restart", old_clock, self.process.clock_ns,
                replayed_calls=replayed, refilled_bytes=refill_bytes,
            )
        if self.profiler is not None:
            self.profiler.on_restart(self.backend, old_devices)

        report = RestartReport(
            restart_time_ns=restart_time,
            replayed_calls=replayed,
            refilled_bytes=refill_bytes,
            reregistered_fatbins=len(patches),
            adopted_streams=len(self.backend.live_streams),
            adopted_events=len(self.backend.live_events),
        )
        self.restarts.append(report)
        return report

    # -- self-healing restart ----------------------------------------------------

    def restart_latest(
        self,
        store: CheckpointStore,
        *,
        retries: int = 2,
        backoff_s: float = 0.25,
        max_backoff_s: float = 8.0,
        allow_heterogeneous: bool = False,
    ) -> RestartReport:
        """Restore from the newest usable generation in ``store``.

        The orchestration loop: discard any torn partials, then walk
        the store's generations newest-first. Each generation gets one
        try plus ``retries`` retries with exponential backoff (virtual
        time) for *transient* failures; a :class:`CorruptCheckpointError`
        is deterministic, so the loop immediately falls back one
        generation instead of burning retries on rotten bytes. Every
        attempt — failed and successful — is recorded in the returned
        report's ``attempts`` trail. ``allow_heterogeneous`` passes
        through to :meth:`restart` (cross-GPU-model migration restore).
        """
        store.discard_partials()
        attempts: list[RestartAttempt] = []
        penalty_ns = 0.0
        last_exc: Exception | None = None
        for gen in store.iter_restore_candidates():
            for try_idx in range(1, retries + 2):
                backoff_ns = 0.0
                if try_idx > 1:
                    backoff_ns = (
                        min(backoff_s * 2.0 ** (try_idx - 2), max_backoff_s)
                        * NS_PER_S
                    )
                    penalty_ns += backoff_ns
                try:
                    image = store.load(gen)
                    report = self.restart(
                        image, allow_heterogeneous=allow_heterogeneous
                    )
                except CorruptCheckpointError as exc:
                    attempts.append(
                        RestartAttempt(gen, try_idx, backoff_ns, repr(exc))
                    )
                    last_exc = exc
                    break  # checksum failures never heal: next generation
                except (RestartError, CheckpointStoreError, InjectedFault) as exc:
                    attempts.append(
                        RestartAttempt(gen, try_idx, backoff_ns, repr(exc))
                    )
                    last_exc = exc
                    continue
                attempts.append(
                    RestartAttempt(gen, try_idx, backoff_ns, None, succeeded=True)
                )
                report.generation = gen
                report.attempts = attempts
                # The failed attempts' backoff is real wall time the job
                # spent down; charge it to the restarted process.
                if penalty_ns:
                    self.process.advance(penalty_ns)
                return report
        raise RestartError(
            f"self-healing restart exhausted every generation "
            f"({len(attempts)} attempts across {store.generations or 'none'})"
        ) from last_exc


# -- runtime fault domain (module docstring) ----------------------------------


@dataclass
class RecoveryAttempt:
    """One rung taken by the escalation ladder (mirrors RestartAttempt)."""

    rung: str  # "retry" | "stream-reset" | "restore" | "failover" | "abort"
    attempt: int  # 1-based index of this rung within its failure episode
    backoff_ns: float  # virtual-time backoff paid before this attempt
    error: str  # repr of the error that drove the attempt
    succeeded: bool = False


@dataclass
class RecoveryReport:
    """Cumulative attempt trail of one :class:`FaultDomain` (mirrors
    :class:`RestartReport` for the recovery ladder)."""

    attempts: list[RecoveryAttempt] = field(default_factory=list)
    retries: int = 0
    stream_resets: int = 0
    restores: int = 0
    #: rung-4 node failovers (cross-node restore of a shipped generation)
    failovers: int = 0
    watchdog_trips: int = 0
    #: virtual work re-executed after restores (fault point − restored cut)
    lost_work_ns: float = 0.0
    #: total virtual-time backoff paid across retry rungs
    backoff_ns: float = 0.0
    aborted: bool = False

    def rung_counts(self) -> dict[str, int]:
        """Per-rung recovery counts (campaign reporting)."""
        return {
            "retry": self.retries,
            "stream-reset": self.stream_resets,
            "restore": self.restores,
            "failover": self.failovers,
        }


class Watchdog:
    """Virtual-time latency watchdog (bounds in :class:`WatchdogLimits`).

    Runtime faults that *hang* rather than fail (kernel-hang,
    copy-stall) don't raise at enqueue — the op completes absurdly far
    in the future and the stream carries a poison flag. Like a real
    driver watchdog, detection happens when the host would block: before
    a synchronization the watchdog scans for poisoned streams via pure
    queries, charges the timeout it spent waiting, and raises a *sticky*
    :class:`~repro.errors.CudaError` instead of letting virtual time
    silently absorb the stall.
    """

    def __init__(self, session: CracSession,
                 limits: WatchdogLimits = DEFAULT_WATCHDOG_LIMITS) -> None:
        self.session = session
        self.limits = limits
        self.trips = 0

    def precheck(self, sync_scope) -> None:
        """Scan for poisoned streams before blocking on a sync.

        ``sync_scope`` is the Stream being drained or ``"device"``; a
        stream-scoped sync only trips on its own stream's poison.
        """
        for dev in self.session.runtime.devices:
            for stream in dev.flagged_streams():
                if (
                    isinstance(sync_scope, Stream)
                    and stream.sid != sync_scope.sid
                ):
                    continue
                self.trips += 1
                if stream.fault == "kernel-hang":
                    wait = self.limits.kernel_timeout_ns
                    code = CudaErrorCode.LAUNCH_TIMEOUT
                    what = "kernel hang"
                else:
                    wait = self.limits.copy_timeout_ns
                    code = CudaErrorCode.STREAM_STALLED
                    what = "stalled copy engine"
                # The host blocked until the bound expired, then the
                # watchdog declared the op stuck.
                self.session.process.advance(
                    wait + self.limits.detection_wait_ns
                )
                raise cuda_error(
                    code,
                    f"watchdog: {what} on stream {stream.sid} "
                    f"(waited {wait / NS_PER_S:.1f}s virtual)",
                    stream_sid=stream.sid,
                )


class FaultDomain:
    """The escalation ladder guarding runtime calls (module docstring).

    Attached to a session via :meth:`CracSession.enable_fault_domain`;
    the dispatch backend routes kernel/copy/sync calls through
    :meth:`run`. Rung budgets are per *failure episode* (one guarded
    call's recovery), so every episode terminates after at most
    ``retries + max_stream_resets + max_restores + 1`` attempts.
    """

    def __init__(
        self,
        session: CracSession,
        store: CheckpointStore | None = None,
        *,
        retries: int = 3,
        max_stream_resets: int = 2,
        max_restores: int = 2,
        max_failovers: int = 1,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
        limits: WatchdogLimits = DEFAULT_WATCHDOG_LIMITS,
    ) -> None:
        self.session = session
        self.store = store
        self.retries = retries
        self.max_stream_resets = max_stream_resets
        self.max_restores = max_restores
        self.max_failovers = max_failovers
        #: rung 4 (node failover), installed by a cluster fabric: called
        #: with the driving error, performs the cross-node restore (kill,
        #: restore the latest *shipped* generation on a surviving node,
        #: re-point ``store``), and returns a dict with at least
        #: ``cut_ns`` (virtual time of the restored cut) for lost-work
        #: accounting. ``None`` = no cluster, the ladder has three rungs.
        self.failover_handler = None
        self.backoff_base_ns = backoff_s * NS_PER_S
        self.max_backoff_ns = max_backoff_s * NS_PER_S
        self.watchdog = Watchdog(session, limits)
        self.report = RecoveryReport()
        #: virtual clock at which each committed generation was cut
        #: (restore-rung lost-work accounting)
        self.committed_at: dict[int, float] = {}
        # Named RNG stream: backoff jitter draws must not perturb the
        # injector's or the checkpoint scheduler's randomness (the same
        # derivation as harness.fault_injection.derive_seed, inlined
        # because core must not import harness).
        self._rng = random.Random(
            (session.seed & 0xFFFFFFFF) ^ zlib.crc32(b"fault-domain-backoff")
        )
        self._in_recovery = False
        self.attach()

    def attach(self) -> None:
        """(Re-)wire the ladder into the session's current runtime."""
        self.session.backend.recovery = self
        for dev in self.session.runtime.devices:
            dev.fault_injector = self.session.fault_injector
            dev.op_log = StreamOpLog()

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self, **kwargs) -> int | None:
        """Commit a checkpoint to the store; record its cut time.

        An injected pipeline crash aborts the attempt (partials are
        discarded, nothing half-commits) and returns ``None`` — the
        prior generation stays the recovery line.
        """
        if self.store is None:
            raise ValueError("FaultDomain.checkpoint needs a store")
        try:
            self.session.checkpoint(store=self.store, **kwargs)
        except InjectedFault:
            self.store.discard_partials()
            return None
        gen = self.store.latest()
        self.committed_at[gen] = self.session.process.clock_ns
        return gen

    # -- the ladder ------------------------------------------------------------

    def run(self, kind: str, thunk, *, sync_scope=None):
        """Run one guarded runtime call; recover per the ladder."""
        if self._in_recovery:
            return thunk()
        n_retry = n_reset = n_restore = n_failover = 0
        while True:
            try:
                if kind == "sync":
                    self.watchdog.precheck(sync_scope)
                result = thunk()
            except CudaError as exc:
                sev = exc.severity
                if sev is None or sev == "program":
                    raise  # deterministic misuse: no rung can heal it
                if exc.code in (
                    CudaErrorCode.LAUNCH_TIMEOUT, CudaErrorCode.STREAM_STALLED
                ):
                    self.report.watchdog_trips += 1
                if sev == "retryable" and n_retry < self.retries:
                    n_retry += 1
                    self._retry(n_retry, exc)
                    continue
                if (
                    sev in ("retryable", "sticky")
                    and n_reset < self.max_stream_resets
                ):
                    n_reset += 1
                    self._stream_reset(n_reset, exc)
                    continue
                if (
                    n_restore < self.max_restores
                    and self.store is not None
                    and self.store.generations
                ):
                    n_restore += 1
                    self._restore(n_restore, exc)
                    continue
                if (
                    self.failover_handler is not None
                    and n_failover < self.max_failovers
                ):
                    # Rung 4: local recovery is off the table (no store,
                    # no usable generation, or the restore budget of a
                    # dying node is spent) but a surviving node holds a
                    # shipped generation — fail the session over.
                    n_failover += 1
                    self._failover(n_failover, exc)
                    continue
                self.report.aborted = True
                self.report.attempts.append(RecoveryAttempt(
                    "abort", 1, 0.0, repr(exc)
                ))
                raise RecoveryAbortedError(
                    f"escalation ladder exhausted ({n_retry} retries, "
                    f"{n_reset} stream resets, {n_restore} restores, "
                    f"{n_failover} failovers): {exc}",
                    report=self.report, cause=exc,
                ) from exc
            else:
                if kind == "sync":
                    self._note_synced(sync_scope)
                return result

    # -- rung 1: retry with backoff -------------------------------------------

    def _retry(self, attempt: int, exc: CudaError) -> None:
        t0 = self.session.process.clock_ns
        backoff = min(
            self.backoff_base_ns * 2.0 ** (attempt - 1), self.max_backoff_ns
        )
        backoff *= 0.5 + self._rng.random()  # jitter in [0.5, 1.5)
        self.session.process.advance(backoff)
        self.report.retries += 1
        self.report.backoff_ns += backoff
        self.report.attempts.append(
            RecoveryAttempt("retry", attempt, backoff, repr(exc))
        )
        self._trace_rung("retry", t0, attempt, exc)

    # -- rung 2: stream reset + replay ----------------------------------------

    def _trace_rung(self, rung: str, t0: float, attempt: int, exc: CudaError) -> None:
        tracer = self.session.tracer
        if tracer is not None:
            tracer.recovery_span(
                rung, t0, self.session.process.clock_ns,
                attempt=attempt, error=repr(exc),
            )

    def _stream_reset(self, attempt: int, exc: CudaError) -> None:
        session = self.session
        t0 = session.process.clock_ns
        runtime = session.runtime
        for dev in runtime.devices:
            flagged = dev.flagged_streams()
            if not flagged and exc.stream_sid is not None:
                s = runtime.streams.get(exc.stream_sid)
                if s is not None:
                    flagged = [s]
            now = session.process.clock_ns
            dev.reset_copy_engines(now)
            for stream in flagged:
                dev.reset_stream(stream, now)
                session.process.advance(session.costs.stream_reset_ns)
                if dev.op_log is not None:
                    # Timing-only replay of the abandoned in-flight
                    # window; guarded against re-entry so replayed ops
                    # are invisible to injection and logging.
                    self._in_recovery = True
                    try:
                        dev.op_log.replay_unsynced(
                            dev, runtime.streams, stream_sid=stream.sid
                        )
                    finally:
                        self._in_recovery = False
        self.report.stream_resets += 1
        self.report.attempts.append(
            RecoveryAttempt("stream-reset", attempt, 0.0, repr(exc))
        )
        self._trace_rung("stream-reset", t0, attempt, exc)

    # -- rung 3: device reset + restore ---------------------------------------

    def _snapshot_buffers(self) -> list[tuple[int, bytes, object]]:
        """Pre-fault contents of every active allocation (redo source)."""
        saved: list[tuple[int, bytes, object]] = []
        if not self.session.process.alive:
            return saved  # node already gone: nothing left to snapshot
        for buf in self.session.runtime.active_allocations():
            residency = (
                buf.residency.copy() if isinstance(buf, ManagedBuffer)
                else None
            )
            saved.append(
                (buf.addr, buf.contents.read_bytes(0, buf.size), residency)
            )
        return saved

    def _reapply_buffers(self, saved: list[tuple[int, bytes, object]]) -> None:
        """Write the pre-fault snapshot back over the restored buffers."""
        for addr, data, residency in saved:
            buf = self.session.runtime.buffers.get(addr)
            if buf is None:
                continue  # freed by a replayed post-cut free
            buf.contents.write_bytes(0, data)
            if residency is not None and isinstance(buf, ManagedBuffer):
                buf.residency[:] = residency

    def _replay_log_suffix(self, generation, pre_entries) -> int:
        """Re-execute allocation calls made after the restored cut.

        Restart rebuilds the buffer table from the image's replay log,
        which stops at the checkpoint cut. The app's redo resumes from
        the *fault* point still holding pointers it allocated between
        the cut and the fault — deterministic re-execution would have
        re-issued those calls, so the redo must too, or they are unknown
        pointers on the fresh lower half. A locally committed image
        aliases the live trampoline log (same object, so its replay
        already covered the full history and the suffix is empty); a
        *shipped* generation was pickled at export and its log is frozen
        at the cut — e.g. an anchor shipped before the app's setup.
        """
        if generation is None or self.store is None:
            return 0
        cut_log = self.store.get(generation).image.blob("crac/replay-log")
        suffix = pre_entries[len(cut_log.entries):]
        if not suffix:
            return 0
        backend = self.session.backend
        log = ReplayLog(entries=list(suffix))
        if backend.virtualize_addresses:
            translation = log.replay(self.session.runtime, strict=False)
            backend.patch_translation(translation)
        else:
            log.replay(self.session.runtime)
        # The trampoline log survives the restart and already holds the
        # suffix; the lost-work advance already charges its wall time.
        return len(suffix)

    def _restore(self, attempt: int, exc: CudaError) -> None:
        """Kill, restore the newest usable generation, redo lost work.

        Redo is by *re-application*: app re-execution from the restored
        cut is deterministic, so its effect equals the pre-fault buffer
        contents snapshotted here — the clock is charged for the lost
        interval and the bytes are applied directly.
        """
        session = self.session
        t_fault = session.process.clock_ns
        saved = self._snapshot_buffers()
        pre_entries = list(session.backend.log.entries)
        self._in_recovery = True
        try:
            # An in-flight background write (forked or speculative) must
            # not commit a cut that post-dates the recovery line we are
            # rolling back to: release it (dirty bits stay intact).
            session.abort_pending_writers()
            session.kill()
            report = session.restart_latest(self.store)
            committed = self.committed_at.get(report.generation, t_fault)
            lost = max(0.0, t_fault - committed)
            session.process.advance(lost)  # deterministic re-execution
            self._replay_log_suffix(report.generation, pre_entries)
            self._reapply_buffers(saved)
        finally:
            self._in_recovery = False
            self.attach()
        self.report.restores += 1
        self.report.lost_work_ns += lost
        self.report.attempts.append(
            RecoveryAttempt("restore", attempt, 0.0, repr(exc), succeeded=True)
        )
        self._trace_rung("restore", t_fault, attempt, exc)

    # -- rung 4: node failover -------------------------------------------------

    def _failover(self, attempt: int, exc: CudaError) -> None:
        """Fail the session over to a surviving node (handler-driven).

        The installed handler owns the cluster mechanics — choosing the
        target node, restoring the latest *shipped* generation there
        (``restart_latest`` on the destination store), and re-pointing
        this domain's ``store`` at the new home. This rung mirrors
        :meth:`_restore`'s deterministic-redo accounting: pre-fault
        buffer contents (when the dying node is still reachable) are
        re-applied after the cross-node restore, and the work between
        the restored cut and the fault point is charged to the clock.
        """
        session = self.session
        t_fault = session.process.clock_ns
        saved = self._snapshot_buffers()
        pre_entries = list(session.backend.log.entries)
        self._in_recovery = True
        try:
            # Same writer release as rung 3: the dying node's in-flight
            # background write must never commit past the shipped cut.
            session.abort_pending_writers()
            outcome = self.failover_handler(exc) or {}
            cut_ns = float(outcome.get("cut_ns", t_fault))
            lost = max(0.0, t_fault - cut_ns)
            session.process.advance(lost)  # deterministic re-execution
            self._replay_log_suffix(outcome.get("generation"), pre_entries)
            self._reapply_buffers(saved)
        finally:
            self._in_recovery = False
            self.attach()
        self.report.failovers += 1
        self.report.lost_work_ns += lost
        self.report.attempts.append(
            RecoveryAttempt("failover", attempt, 0.0, repr(exc), succeeded=True)
        )
        self._trace_rung("failover", t_fault, attempt, exc)

    def failover_now(self, exc: Exception) -> None:
        """Take the failover rung outside a guarded call.

        The serve tier detects node death through its own heartbeat
        sweep, not through a failed runtime call — there may be no
        in-flight op to fail when the node is declared dead. This entry
        point runs the same rung-4 mechanics (pre-fault snapshot,
        handler-driven cross-node restore, deterministic redo) under
        the same per-episode budget, so a tier-initiated failover is
        indistinguishable from a ladder-initiated one in the report.
        """
        if self.failover_handler is None:
            raise ValueError("failover_now needs an installed failover_handler")
        if not isinstance(exc, CudaError):
            exc = cuda_error(
                CudaErrorCode.HEARTBEAT_LOST,
                f"node declared dead by the serving tier: {exc!r}",
            )
        self._failover(1, exc)

    # -- op-log retirement -----------------------------------------------------

    def _note_synced(self, sync_scope) -> None:
        sid = sync_scope.sid if isinstance(sync_scope, Stream) else None
        for dev in self.session.runtime.devices:
            if dev.op_log is not None:
                dev.op_log.mark_synced(sid)
