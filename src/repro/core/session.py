"""CracSession: end-to-end launch / checkpoint / kill / restart.

The session owns the split process, the trampoline backend, the DMTCP
checkpointer with the CRAC plugin, and the coordinator. Its
:meth:`restart` implements the paper's restart path:

1. a fresh process is created and a **new lower-half helper** is loaded
   (same deterministic layout: ASLR disabled, same platform);
2. DMTCP restores the upper-half memory from the image at the original
   addresses;
3. the trampoline is re-pointed at the fresh entry-point table;
4. the full cudaMalloc-family log is replayed so every active allocation
   reappears at its original address (divergence aborts the restart);
5. active ``cudaHostAlloc`` buffers are re-registered (their bytes came
   back with the upper half);
6. fat binaries are re-registered and handles patched (§3.2.5);
7. device/managed memory is refilled from the staged blobs over PCIe;
8. application-held stream/event handles are adopted by the fresh
   library ("CRAC needs to recreate streams", §4.4.2).

Because steps 4–8 restore every pointer and handle the application
holds, the (simulated) application object simply continues running —
exactly the transparency argument of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.halves import SplitProcess
from repro.core.plugin import CracPlugin
from repro.core.trampoline import CracBackend
from repro.dmtcp.checkpointer import DmtcpCheckpointer
from repro.dmtcp.coordinator import DmtcpCoordinator
from repro.dmtcp.forked import ForkedCheckpoint
from repro.dmtcp.image import CheckpointImage
from repro.dmtcp.store import CheckpointStore
from repro.errors import (
    CheckpointStoreError,
    CorruptCheckpointError,
    InjectedFault,
    RestartError,
)
from repro.gpu.device import GpuDevice
from repro.gpu.timing import DEFAULT_HOST_COSTS, NS_PER_S, HostCosts
from repro.gpu.uvm import UVM_PAGE, ManagedBuffer
from repro.linux.loader import ProgramImage

if TYPE_CHECKING:  # core must not import harness at runtime
    from repro.harness.fault_injection import FaultInjector


@dataclass
class RestartAttempt:
    """One try of the self-healing restart loop (success or failure)."""

    generation: int
    attempt: int  # 1-based try index within this generation
    backoff_ns: float  # virtual-time backoff paid before this try
    error: str | None  # repr of the failure, None on success
    succeeded: bool = False


@dataclass
class RestartReport:
    """What the restart did, and what it cost (virtual time)."""

    restart_time_ns: float
    replayed_calls: int
    refilled_bytes: int
    reregistered_fatbins: int
    adopted_streams: int
    adopted_events: int
    #: Store generation the successful restore came from (``None`` for a
    #: direct ``restart(image)`` that bypassed the store).
    generation: int | None = None
    #: Full attempt trail of :meth:`CracSession.restart_latest`,
    #: including the failed tries that preceded this success.
    attempts: list[RestartAttempt] = field(default_factory=list)

    @property
    def backoff_ns(self) -> float:
        """Total virtual-time backoff paid across failed attempts."""
        return sum(a.backoff_ns for a in self.attempts)


class CracSession:
    """A CUDA application running under CRAC."""

    def __init__(
        self,
        *,
        gpu: str = "V100",
        app_image: ProgramImage | None = None,
        fsgsbase: bool = False,
        seed: int = 0,
        n_gpus: int = 1,
        costs: HostCosts = DEFAULT_HOST_COSTS,
        full_arena_checkpoint: bool = False,
        address_virtualization: bool = False,
        fault_injector: "FaultInjector | None" = None,
    ) -> None:
        self.gpu = gpu
        self.seed = seed
        self.fsgsbase = fsgsbase
        self.n_gpus = n_gpus
        self.costs = costs
        self.app_image = app_image
        self.fault_injector = fault_injector
        self.split = SplitProcess(
            gpu=gpu, app_image=app_image, fsgsbase=fsgsbase, seed=seed,
            n_gpus=n_gpus,
        )
        self.backend = CracBackend(
            self.split.runtime, costs,
            virtualize_addresses=address_virtualization,
        )
        # DMTCP + CRAC launch-time overhead (helper load, entry table,
        # coordinator handshake) — significant for short-running apps.
        self.process.advance(costs.crac_startup_ns)
        self.plugin = CracPlugin(self, full_arena=full_arena_checkpoint)
        self.checkpointer = DmtcpCheckpointer(
            self.process, [self.plugin], costs, fault_injector=fault_injector
        )
        self.coordinator = DmtcpCoordinator(self.checkpointer, seed=seed)
        self.backend.coordinator = self.coordinator
        self.restarts: list[RestartReport] = []
        #: forked checkpoints whose background image write has not been
        #: finished yet (at most one in practice — a new checkpoint first
        #: drains the previous write)
        self.pending_forks: list[ForkedCheckpoint] = []

    # -- conveniences ------------------------------------------------------------

    def __enter__(self) -> "CracSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.process.alive:
            self.kill()

    @property
    def process(self):
        return self.split.process

    @property
    def runtime(self):
        return self.split.runtime

    @property
    def device(self) -> GpuDevice:
        return self.split.device

    # -- checkpoint ----------------------------------------------------------------

    def checkpoint(
        self,
        *,
        gzip: bool = False,
        incremental: bool = False,
        parent: CheckpointImage | None = None,
        store: CheckpointStore | None = None,
        forked: bool = False,
    ) -> CheckpointImage:
        """Take a checkpoint now (drain → stage → dump upper half).

        ``incremental=True`` saves only host pages *and GPU buffer
        spans* dirtied since ``parent``. With ``store`` the image goes
        through the store's two-phase commit and becomes a restorable
        generation. ``forked=True`` moves the image write (and the
        commit point) onto a background timeline: the app resumes right
        after quiesce + snapshot, pays copy-on-write for bytes it
        touches inside the write window, and the write completes at
        :meth:`finish_forked_checkpoints` (called automatically before
        the next checkpoint and at kill)."""
        # Only one background write at a time: drain the previous one
        # first (usually long done — residual wait is then zero).
        self.finish_forked_checkpoints()
        image = self.coordinator.checkpoint(
            gzip=gzip, incremental=incremental, parent=parent, store=store,
            forked=forked,
        )
        if forked:
            self.pending_forks.append(image.forked_writer)
        return image

    def finish_forked_checkpoints(self, *, block: bool = True) -> None:
        """Complete every pending forked image write (COW charge +
        commit). A failure aborts that write — its image never commits,
        dirty bits stay intact — and propagates."""
        while self.pending_forks:
            writer = self.pending_forks.pop(0)
            writer.finish(
                self.process if self.process.alive else None, block=block
            )

    def kill(self) -> None:
        """Terminate the original process (device state is lost).

        A forked image write survives the parent's death (the child
        process owns it — CRUM's model); its COW cost is charged to the
        parent before death but nobody waits out the write window."""
        if self.pending_forks:
            self.finish_forked_checkpoints(block=False)
        self.process.kill()
        self.runtime.destroy()

    # -- restart ----------------------------------------------------------------------

    def restart(self, image: CheckpointImage) -> RestartReport:
        """Restart from ``image`` in a brand-new process (see module doc)."""
        platform = image.blobs.get("crac/platform")
        if platform is not None and not self.backend.virtualize_addresses:
            want = platform.payload
            from repro.gpu.timing import GPU_SPECS

            have_spec = GPU_SPECS[self.gpu]
            if (
                want["gpu"] != have_spec.name
                or want["n_gpus"] != self.n_gpus
            ):
                raise RestartError(
                    "restart platform mismatch: image was taken on "
                    f"{want['n_gpus']}× {want['gpu']}, restarting on "
                    f"{self.n_gpus}× {have_spec.name} — CRAC's replay "
                    "determinism requires the same CUDA/GPU platform "
                    "(§3.2.4)"
                )
        old_clock = self.process.clock_ns
        fresh = SplitProcess(
            gpu=self.gpu,
            app_image=self.app_image,
            fsgsbase=self.fsgsbase,
            seed=self.seed,
            n_gpus=self.n_gpus,
            load_upper=False,
        )
        proc = fresh.process
        proc.advance(self.costs.restart_bootstrap_ns)

        # 2. Restore upper-half memory at original addresses; the
        #    restored ranges are re-registered as upper-owned.
        restore_cost = self.checkpointer.restore_memory(image, proc)
        proc.advance(restore_cost)
        if self.fault_injector is not None:
            # Mid-restore crash: upper half is mapped but the lower half
            # is not rebuilt yet — the restarted process is unusable and
            # the orchestrator must retry (or fall back a generation).
            self.fault_injector.check("restore", f"pid {image.pid}")
        for saved in image.regions:
            fresh.loader._track("upper", saved.start, saved.size)

        # 3. Re-point the trampoline at the fresh lower half.
        self.backend.swap_runtime(fresh.runtime)

        # 4. Replay the allocation log. In the baseline design address
        #    determinism is verified; under address virtualization (the
        #    §3.2.4 future-work mode) divergence is tolerated and the
        #    virtual-pointer table is patched instead.
        log = image.blob("crac/replay-log")
        if self.fault_injector is not None:
            # kind="divergence" raises ReplayDivergenceError here, the
            # §3.2.4 failure mode (ASLR left on / different platform).
            self.fault_injector.check("replay", f"{len(log.entries)} calls")
        if self.backend.virtualize_addresses:
            translation = log.replay(fresh.runtime, strict=False)
            replayed = len(log.entries)
        else:
            replayed = log.replay(fresh.runtime)
            translation = {}
        proc.advance(replayed * self.costs.replay_call_ns)

        # 5. Re-register active cudaHostAlloc buffers (bytes already in
        #    the restored upper half).
        buffers = image.blob("crac/buffers")
        active = log.active_allocations()
        for addr, entry in active.items():
            if entry.op == "host_alloc":
                fresh.runtime.cudaHostRegister(addr, entry.nbytes)
                # The registered pages are already mapped (restored with
                # the upper half); the fresh hostalloc arena must never
                # hand them out again.
                fresh.runtime._hostalloc_alloc.reserve(addr, entry.nbytes)
                proc.advance(self.costs.replay_call_ns)

        # Sanity: every staged buffer must exist again (possibly moved).
        missing = [
            a
            for a in buffers
            if translation.get(a, a) not in fresh.runtime.buffers
        ]
        if missing:
            raise RestartError(
                f"replay did not recreate buffers at {[hex(a) for a in missing]}"
            )

        # 6. Fat binaries: re-register and patch handles.
        patches = self.backend.reregister_fatbins()

        # 7. Refill contents of active allocations; device/managed bytes
        #    cross PCIe again. GPU deltas chain like host dirty pages:
        #    walk the image chain base-first and overlay each image's
        #    staged spans. A full entry — or a uid change, meaning the
        #    arena reused the address for a *different* allocation —
        #    resets the merge so stale bytes never leak across a free.
        refill_bytes = 0
        for addr, final_entry in buffers.items():
            seq: list[dict] = []
            for img in image.chain():
                blob = img.blobs.get("crac/buffers")
                if blob is None or addr not in blob.payload:
                    continue
                entry = blob.payload[addr]
                if (
                    entry.get("delta")
                    and seq
                    and seq[-1].get("uid") == entry.get("uid")
                ):
                    seq.append(entry)
                else:
                    # Full snapshot, or a delta of a fresh allocation
                    # (its pre-history is the replay-created zero-filled
                    # buffer, which is exactly the fresh state).
                    seq = [entry]
            buf = fresh.runtime.buffers[translation.get(addr, addr)]
            for entry in seq:
                if entry.get("delta"):
                    buf.contents.apply_delta(entry["snapshot"])
                else:
                    buf.contents.restore(entry["snapshot"])
                if "pcie_bytes" in entry:
                    refill_bytes += entry["pcie_bytes"]
                elif entry["kind"] == "device":
                    refill_bytes += entry["size"]
                elif entry["kind"] == "managed":
                    # Image written before pcie_bytes existed: mirror the
                    # old accounting (device-resident pages cross PCIe).
                    refill_bytes += (
                        int((entry["residency"] == 1).sum()) * UVM_PAGE
                    )
            if final_entry["kind"] == "managed":
                assert isinstance(buf, ManagedBuffer)
                buf.residency[:] = final_entry["residency"]
            # The refilled contents *are* the committed cut's state.
            buf.contents.clear_dirty()
        proc.advance(refill_bytes / fresh.device.spec.pcie_bw * NS_PER_S)

        # Restore the application's cudaSetDevice state (replay may have
        # left a different device current).
        want_device = image.blobs.get("crac/current-device")
        if want_device is not None and fresh.runtime.current_device != want_device.payload:
            fresh.runtime.cudaSetDevice(want_device.payload)

        # Patch the application's virtual pointers onto the (possibly
        # moved) real allocations.
        if translation:
            self.backend.patch_translation(translation)

        # 8. Recreate streams/events: adopt the app-held handles.
        for stream in self.backend.live_streams.values():
            fresh.runtime.adopt_stream(stream)
            proc.advance(self.costs.replay_call_ns)
        for event in self.backend.live_events.values():
            fresh.runtime.adopt_event(event)

        restart_time = proc.clock_ns
        # The session continues in the new process; keep virtual time
        # monotone across the kill/restart boundary.
        proc.advance_to(old_clock + restart_time)

        self.split = fresh
        self.checkpointer = DmtcpCheckpointer(
            proc, [self.plugin], self.costs, fault_injector=self.fault_injector
        )
        self.coordinator = DmtcpCoordinator(self.checkpointer, seed=self.seed)
        self.backend.coordinator = self.coordinator

        report = RestartReport(
            restart_time_ns=restart_time,
            replayed_calls=replayed,
            refilled_bytes=refill_bytes,
            reregistered_fatbins=len(patches),
            adopted_streams=len(self.backend.live_streams),
            adopted_events=len(self.backend.live_events),
        )
        self.restarts.append(report)
        return report

    # -- self-healing restart ----------------------------------------------------

    def restart_latest(
        self,
        store: CheckpointStore,
        *,
        retries: int = 2,
        backoff_s: float = 0.25,
        max_backoff_s: float = 8.0,
    ) -> RestartReport:
        """Restore from the newest usable generation in ``store``.

        The orchestration loop: discard any torn partials, then walk
        the store's generations newest-first. Each generation gets one
        try plus ``retries`` retries with exponential backoff (virtual
        time) for *transient* failures; a :class:`CorruptCheckpointError`
        is deterministic, so the loop immediately falls back one
        generation instead of burning retries on rotten bytes. Every
        attempt — failed and successful — is recorded in the returned
        report's ``attempts`` trail.
        """
        store.discard_partials()
        attempts: list[RestartAttempt] = []
        penalty_ns = 0.0
        last_exc: Exception | None = None
        for gen in store.iter_restore_candidates():
            for try_idx in range(1, retries + 2):
                backoff_ns = 0.0
                if try_idx > 1:
                    backoff_ns = (
                        min(backoff_s * 2.0 ** (try_idx - 2), max_backoff_s)
                        * NS_PER_S
                    )
                    penalty_ns += backoff_ns
                try:
                    image = store.load(gen)
                    report = self.restart(image)
                except CorruptCheckpointError as exc:
                    attempts.append(
                        RestartAttempt(gen, try_idx, backoff_ns, repr(exc))
                    )
                    last_exc = exc
                    break  # checksum failures never heal: next generation
                except (RestartError, CheckpointStoreError, InjectedFault) as exc:
                    attempts.append(
                        RestartAttempt(gen, try_idx, backoff_ns, repr(exc))
                    )
                    last_exc = exc
                    continue
                attempts.append(
                    RestartAttempt(gen, try_idx, backoff_ns, None, succeeded=True)
                )
                report.generation = gen
                report.attempts = attempts
                # The failed attempts' backoff is real wall time the job
                # spent down; charge it to the restarted process.
                if penalty_ns:
                    self.process.advance(penalty_ns)
                return report
        raise RestartError(
            f"self-healing restart exhausted every generation "
            f"({len(attempts)} attempts across {store.generations or 'none'})"
        ) from last_exc
