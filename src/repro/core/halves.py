"""Split-process construction (paper §3.1, Figure 1).

The lower-half *helper* program — a tiny CUDA application linked against
the real CUDA libraries and its own libc — is loaded first, into the
reserved lower window, by the kernel-loader imitation that interposes on
all of its ``mmap`` calls. At launch the helper copies the entry points
of the CUDA library calls into an *entry-point table*; the upper-half
application's dummy libcuda jumps through that table (the trampoline).

The upper-half application is then loaded normally (under DMTCP), with
its own libc — two independent GNU link maps in one process.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cuda.api import CudaRuntime
from repro.gpu.device import GpuDevice
from repro.gpu.timing import GPU_SPECS, GpuSpec
from repro.linux.loader import LoadedProgram, ProgramImage, ProgramLoader, Segment
from repro.linux.process import ADDR_NO_RANDOMIZE, SimProcess

#: The CUDA entry points the helper exports through the table. (The real
#: helper exports the full runtime API; listing them makes the "copy the
#: entry addresses into an array" step of Figure 1 concrete.)
ENTRY_POINTS = (
    "cudaMalloc",
    "cudaFree",
    "cudaMallocHost",
    "cudaHostAlloc",
    "cudaHostRegister",
    "cudaFreeHost",
    "cudaMallocManaged",
    "cudaMemcpy",
    "cudaMemcpyAsync",
    "cudaMemset",
    "cudaMemsetAsync",
    "cudaLaunchKernel",
    "cudaPushCallConfiguration",
    "cudaPopCallConfiguration",
    "cudaStreamCreate",
    "cudaStreamDestroy",
    "cudaStreamSynchronize",
    "cudaStreamWaitEvent",
    "cudaDeviceSynchronize",
    "cudaEventCreate",
    "cudaEventDestroy",
    "cudaEventRecord",
    "cudaEventSynchronize",
    "cudaEventElapsedTime",
    "cudaGetDeviceProperties",
    "cudaSetDevice",
    "cudaGetDevice",
    "cudaGetDeviceCount",
    "cudaMemcpyPeer",
    "cudaMemGetInfo",
    "cudaPointerGetAttributes",
    "cudaStreamQuery",
    "cudaEventQuery",
    "cudaMemPrefetchAsync",
    "__cudaRegisterFatBinary",
    "__cudaRegisterFunction",
    "__cudaUnregisterFatBinary",
)


#: Per-allocation-family VA sub-windows inside the lower half — the UVA
#: address carving real CUDA performs at context creation. Keeping each
#: arena family in its own range makes each family's replay addresses
#: independent of how families interleaved in the original run.
ARENA_WINDOWS: dict[str, tuple[int, int]] = {
    "cuda-device-arena": (0x0000_1100_0000_0000, 0x0000_1400_0000_0000),
    "cuda-pinned-arena": (0x0000_1400_0000_0000, 0x0000_1700_0000_0000),
    "cuda-hostalloc-arena": (0x0000_1700_0000_0000, 0x0000_1A00_0000_0000),
    "cuda-managed-arena": (0x0000_1A00_0000_0000, 0x0000_2000_0000_0000),
}


def helper_image() -> ProgramImage:
    """The lower-half helper: tiny app + CUDA libraries + its own libc."""
    return ProgramImage(
        name="crac-helper",
        segments=(
            Segment("crac-helper.text", 24 * 1024, "r-x"),
            Segment("crac-helper.data", 24 * 1024, "rw-"),
        ),
        libraries=(
            ProgramImage.simple("libcuda.so", 4096, 1024),
            ProgramImage.simple("libcudart.so", 1024, 256),
            ProgramImage.simple("libcublas.so", 8192, 512),
            ProgramImage.simple("libc-lower.so", 2048, 512),
            ProgramImage.simple("ld-lower.so", 256, 64),
        ),
    )


def default_app_image(name: str = "app") -> ProgramImage:
    """A typical upper-half CUDA application image."""
    return ProgramImage(
        name=name,
        segments=(
            Segment(f"{name}.text", 512 * 1024, "r-x"),
            Segment(f"{name}.data", 512 * 1024, "rw-"),
            Segment("[heap]", 4 << 20, "rw-"),
            Segment("[stack]", 8 << 20, "rw-"),
        ),
        libraries=(
            ProgramImage.simple("libcuda-dummy.so", 256, 64),
            ProgramImage.simple("libc.so", 2048, 512),
            ProgramImage.simple("ld.so", 256, 64),
        ),
    )


@dataclass
class EntryPointTable:
    """The array of lower-half libcuda entry addresses (Figure 1).

    Lives at a fixed location in the lower-half helper's data segment;
    the upper-half trampoline reads it to find where to jump.
    """

    table_addr: int
    entries: dict[str, int] = field(default_factory=dict)

    def resolve(self, api_name: str) -> int:
        """Address of one CUDA entry point in the lower half."""
        return self.entries[api_name]


class SplitProcess:
    """One process holding both halves plus the CUDA runtime instance."""

    def __init__(
        self,
        *,
        gpu: str | GpuSpec = "V100",
        app_image: ProgramImage | None = None,
        fsgsbase: bool = False,
        seed: int = 0,
        device: GpuDevice | None = None,
        n_gpus: int = 1,
        load_upper: bool = True,
    ) -> None:
        spec = GPU_SPECS[gpu] if isinstance(gpu, str) else gpu
        self.process = SimProcess(aslr=True, fsgsbase=fsgsbase, seed=seed)
        # CRAC disables address-space randomization so that replayed
        # allocations land at their original addresses (§3.2.4).
        self.process.personality(ADDR_NO_RANDOMIZE)
        self.loader = ProgramLoader(self.process)

        # 1. The helper loads first (it must own the low window before
        #    the application can accidentally take it).
        self.lower: LoadedProgram = self.loader.load(helper_image(), "lower")

        # 2. The helper copies the CUDA entry points into the table.
        table_addr = self.lower.regions[-1][0]  # helper.data
        self.entry_table = EntryPointTable(table_addr=table_addr)
        libcuda_base = self.lower.regions[0][0]
        for i, name in enumerate(ENTRY_POINTS):
            self.entry_table.entries[name] = libcuda_base + 0x100 * (i + 1)
            self.process.vas.write(
                table_addr + 8 * i,
                self.entry_table.entries[name].to_bytes(8, "little"),
            )

        # 3. The CUDA library initializes inside the lower half: all of
        #    its future memory comes from interposed lower-half mmaps.
        #    Each allocation family gets its own VA sub-window (CUDA's
        #    UVA address carving), which is what makes replaying one
        #    family independent of the others' interleaving.
        if device is not None:
            self.devices = [device]
        else:
            self.devices = [GpuDevice(spec) for _ in range(n_gpus)]
        self.device = self.devices[0]
        self.runtime = CudaRuntime(
            self.process,
            self.devices,
            mem_source=self._lower_mmap,
        )

        # 4. The application loads into the upper half (under DMTCP). At
        #    restart the upper half comes from the checkpoint image
        #    instead (load_upper=False); the restorer re-registers the
        #    restored ranges with the loader.
        self.app_image = app_image if app_image is not None else default_app_image()
        self.upper: LoadedProgram | None = None
        if load_upper:
            self.upper = self.loader.load(self.app_image, "upper")

    def _lower_mmap(self, size: int, tag: str) -> int:
        window = ARENA_WINDOWS.get(tag)
        if window is None:
            # Per-device arena tags ("cuda-device-arena-dev2") share the
            # family window.
            for prefix, win in ARENA_WINDOWS.items():
                if tag.startswith(prefix):
                    window = win
                    break
        return self.loader.mmap_for_half(
            "lower", size, tag_leaf=tag, window=window
        )

    # -- queries ---------------------------------------------------------------

    def lower_ranges(self) -> list[tuple[int, int]]:
        """All lower-half (start, size) ranges — the checkpoint veto set."""
        return self.loader.ranges("lower")

    def upper_mmap(self, size: int, tag: str = "app-data") -> int:
        """An upper-half runtime allocation (application heap growth)."""
        return self.loader.mmap_for_half("upper", size, tag_leaf=tag)
