"""repro — a full-system reproduction of CRAC (SC 2020).

CRAC (Checkpoint-Restart Architecture for CUDA) transparently checkpoints
CUDA applications by loading the CUDA library into the "lower half" of a
single process address space and interposing on the CUDA runtime API with
trampolines, delegating host-side checkpointing to DMTCP.

This package reproduces the *architecture* and the *evaluation* of the
paper on a simulated substrate (see DESIGN.md for the substitution map):

- :mod:`repro.linux`  — simulated Linux address space, /proc maps, loader
- :mod:`repro.gpu`    — simulated NVIDIA GPU (streams, UVM, arenas)
- :mod:`repro.cuda`   — the CUDA runtime library stand-in
- :mod:`repro.dmtcp`  — host checkpointing substrate with plugin hooks
- :mod:`repro.core`   — CRAC itself (split process, trampoline, log-replay)
- :mod:`repro.proxy`  — proxy-based baselines (CRUM, CRCUDA, CheCUDA, CMA)
- :mod:`repro.apps`   — the paper's workloads (Rodinia, LULESH, HPGMG, ...)
- :mod:`repro.harness`— experiment runner reproducing every table/figure

Quickstart::

    from repro.harness import Machine, run_app
    from repro.apps.rodinia import Hotspot

    machine = Machine.v100()
    native = run_app(Hotspot(scale=0.1), machine, mode="native")
    crac   = run_app(Hotspot(scale=0.1), machine, mode="crac")
    print(f"overhead: {crac.overhead_pct(native):.2f}%")
"""

from repro._version import __version__

__all__ = ["__version__"]
