"""CRCUDA baseline: proxy-based checkpointing with no UVA/UVM support.

CRCUDA (Suzuki et al., GTC'16) predates usable UVM checkpointing
entirely: "CRCUDA doesn't support UVA or UVM" (§2.3). Its dispatch cost
structure is the naive proxy's; any attempt to use managed memory is a
hard error.
"""

from __future__ import annotations

from repro.errors import UnsupportedFeatureError
from repro.proxy.proxy_runtime import NaiveProxyBackend


class CrcudaBackend(NaiveProxyBackend):
    """CRCUDA dispatch: proxy IPC, and no managed memory at all."""

    mode = "crcuda"

    def malloc_managed(self, nbytes: int) -> int:
        raise UnsupportedFeatureError(
            "CRCUDA does not support UVA/UVM (cudaMallocManaged unavailable)"
        )

    def managed_view(self, addr: int, nbytes: int, dtype=None, offset: int = 0):
        raise UnsupportedFeatureError("CRCUDA does not support UVA/UVM")
