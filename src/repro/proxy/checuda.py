"""CheCUDA baseline: pre-CUDA-4.0 destroy-and-restore checkpointing (§2.2).

CheCUDA's recipe: (a) drain the queue (``cudaDeviceSynchronize``);
(b) copy persistent GPU state to host memory; (c) destroy all CUDA
resources; (d) checkpoint on the host side with BLCR; restart by
reversing the steps, recreating resources from a creation log.

This worked when every CUDA resource lived solely on the GPU. CUDA 4.0's
UVA made the address space *shared* between host and device: the UVA
mapping cannot be destroyed and recreated through any public API, and
restoring the saved CUDA-library memory leaves it inconsistent with the
fresh driver context — the next CUDA call fails. Both behaviours are
reproduced here (see ``CudaRuntime.restore_library_memory``).
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.cuda.api import CudaRuntime
from repro.gpu.timing import DEFAULT_HOST_COSTS, NS_PER_S, HostCosts
from repro.gpu.uvm import ManagedBuffer


@dataclass
class CheCudaImage:
    """What CheCUDA saves: library memory + drained resource contents."""

    library_memory: dict
    buffers: dict[int, dict]  # addr -> {"kind", "size", "snapshot"}
    creation_log: list[tuple[str, int, int]]  # (kind, nbytes, addr)


class CheCudaCheckpointer:
    """Destroy-and-restore checkpointing for one CUDA runtime.

    The caller records resource creations via :meth:`note_alloc` (in a
    real system this is BLCR-side interposition).
    """

    def __init__(
        self, runtime: CudaRuntime, costs: HostCosts = DEFAULT_HOST_COSTS
    ) -> None:
        self.runtime = runtime
        self.costs = costs
        self.creation_log: list[tuple[str, int, int]] = []

    def note_alloc(self, kind: str, nbytes: int, addr: int) -> None:
        """Record a resource creation for later replay."""
        self.creation_log.append((kind, nbytes, addr))

    def checkpoint(self) -> CheCudaImage:
        """Steps (a)–(c): drain, copy state to host, destroy resources."""
        rt = self.runtime
        rt.cudaDeviceSynchronize()
        buffers: dict[int, dict] = {}
        drain = 0
        for buf in rt.active_allocations():
            kind = "managed" if isinstance(buf, ManagedBuffer) else buf.kind
            buffers[buf.addr] = {
                "kind": kind,
                "size": buf.size,
                "snapshot": buf.contents.snapshot(),
            }
            if kind != "host-pinned":
                drain += buf.size
        rt.process.advance(drain / rt.device.spec.pcie_bw * NS_PER_S)
        image = CheCudaImage(
            library_memory=rt.library_memory_snapshot(),
            buffers=buffers,
            creation_log=list(self.creation_log),
        )
        rt.destroy()  # step (c): all CUDA resources destroyed
        return image

    def restart(self, image: CheCudaImage, fresh_runtime: CudaRuntime) -> None:
        """Reverse the steps into a fresh runtime (fresh driver context).

        Restores the saved library memory, then replays resource
        creation. With pre-UVA state this fully works; once the saved
        library held UVA/UVM state, the *next* CUDA call after restart
        fails with LIBRARY_STATE_INCONSISTENT — the §2.2 failure.
        """
        fresh_runtime.restore_library_memory(image.library_memory)
        for kind, nbytes, addr in image.creation_log:
            # Replay resource creation (raises once the restored library
            # state is inconsistent with the fresh driver context).
            if kind == "device":
                got = fresh_runtime.cudaMalloc(nbytes)
            elif kind == "host-pinned":
                got = fresh_runtime.cudaMallocHost(nbytes)
            elif kind == "managed":
                got = fresh_runtime.cudaMallocManaged(nbytes)
            else:
                raise ValueError(kind)
            entry = image.buffers.get(addr)
            if entry is not None and got in fresh_runtime.buffers:
                fresh_runtime.buffers[got].contents.restore(entry["snapshot"])
        self.runtime = fresh_runtime
