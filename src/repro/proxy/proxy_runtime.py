"""The naive proxy dispatcher: every CUDA call is an RPC (§2.3, §4.4.4).

Architecture of CRCUDA/CRUM: the application process holds no CUDA
state; a separate *proxy process* links the real CUDA library. Every
CUDA call marshals its arguments, crosses the process boundary, and —
for calls that reference data buffers the proxy does not already hold —
copies those buffers through CMA (inputs before the call, outputs after).

This is the cost structure the paper's Table 3 quantifies: 142%–17,812%
overhead on cuBLAS loops, versus CRAC's ~1%, because CRAC's single
address space passes pointers directly.

Checkpointing under this architecture is easy (the app process contains
no CUDA library — just checkpoint it and restart a fresh proxy), which
is precisely why CRCUDA/CRUM accepted the runtime cost. The simulation
keeps both processes' work on one virtual clock, since the RPCs are
synchronous.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cuda.api import CudaRuntime, ManagedUse
from repro.cuda.interface import CudaDispatchBase
from repro.gpu.timing import DEFAULT_HOST_COSTS, HostCosts
from repro.proxy.cma import CmaChannel


class NaiveProxyBackend(CudaDispatchBase):
    """Proxy dispatch with per-call CMA buffer shipping."""

    mode = "proxy-cma"

    def __init__(
        self,
        runtime: CudaRuntime,
        host_costs: HostCosts = DEFAULT_HOST_COSTS,
        channel: CmaChannel | None = None,
    ) -> None:
        super().__init__(runtime, host_costs)
        self.channel = channel if channel is not None else CmaChannel()

    def _buffer_size(self, addr: int) -> int:
        buf = self.runtime.buffers.get(addr)
        return buf.size if buf is not None else 0

    def _charge_call(
        self,
        name: str,
        *,
        payload_bytes: int = 0,
        ship_in: Sequence[int] = (),
        ship_out: Sequence[int] = (),
    ) -> None:
        cost = self.costs.native_dispatch_ns  # the proxy still calls CUDA
        cost += self.channel.rpc_cost_ns(payload_bytes)
        for addr in ship_in:
            cost += self.channel.transfer_cost_ns(self._buffer_size(addr))
        for addr in ship_out:
            cost += self.channel.transfer_cost_ns(self._buffer_size(addr))
        self.process.advance(cost)

    def _launch_ship_buffers(self, managed: Iterable[ManagedUse]) -> Sequence[int]:
        # The naive proxy has no UVM pages on the app side; any managed
        # buffer a kernel touches must cross the boundary wholesale.
        return tuple(use.addr for use in managed)
