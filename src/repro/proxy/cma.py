"""Cross-Memory-Attach (CMA) IPC channel cost model.

CMA (``process_vm_readv`` / ``process_vm_writev``) is the fastest
single-copy IPC Linux offers, and is what the paper's §4.4.4 benchmark
uses to give proxy-based designs their best case. The effective
bandwidth degrades with transfer size as the copies fall out of cache —
the paper's Table 3 implies ≈11 GB/s at 1 MB, ≈8 GB/s at 10 MB and
≈4 GB/s at 100 MB — so the model interpolates a bandwidth curve in
log-size space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.gpu.timing import NS_PER_S

#: (transfer size in bytes, effective bandwidth in bytes/s) anchors,
#: calibrated against Table 3 (see module docstring).
BANDWIDTH_CURVE: tuple[tuple[float, float], ...] = (
    (64 * 1024, 13.0e9),
    (1 << 20, 11.0e9),
    (10 << 20, 8.0e9),
    (100 << 20, 4.0e9),
)


def cma_bandwidth(nbytes: int) -> float:
    """Effective CMA bandwidth for one transfer of ``nbytes``."""
    if nbytes <= BANDWIDTH_CURVE[0][0]:
        return BANDWIDTH_CURVE[0][1]
    if nbytes >= BANDWIDTH_CURVE[-1][0]:
        return BANDWIDTH_CURVE[-1][1]
    for (s0, b0), (s1, b1) in zip(BANDWIDTH_CURVE, BANDWIDTH_CURVE[1:]):
        if s0 <= nbytes <= s1:
            t = (math.log(nbytes) - math.log(s0)) / (math.log(s1) - math.log(s0))
            return b0 + t * (b1 - b0)
    raise AssertionError("unreachable")


@dataclass
class CmaChannel:
    """One app⇄proxy CMA channel with accounting."""

    #: Fixed request/response round-trip cost (syscall pair + proxy
    #: dispatch loop), ns per RPC.
    rpc_ns: float = 6_000.0
    #: Per-transfer fixed cost (iovec setup + syscall), ns.
    transfer_setup_ns: float = 1_200.0
    total_rpcs: int = field(default=0, init=False)
    total_bytes: int = field(default=0, init=False)

    def rpc_cost_ns(self, payload_bytes: int = 0) -> float:
        """Cost of one RPC carrying ``payload_bytes`` of marshalled args."""
        self.total_rpcs += 1
        return self.rpc_ns + self.transfer_cost_ns(payload_bytes)

    def transfer_cost_ns(self, nbytes: int) -> float:
        """Cost of moving ``nbytes`` through CMA (one direction)."""
        if nbytes <= 0:
            return 0.0
        self.total_bytes += nbytes
        return (
            self.transfer_setup_ns
            + nbytes / cma_bandwidth(nbytes) * NS_PER_S
        )
