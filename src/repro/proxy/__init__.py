"""Proxy-based checkpointing baselines (the systems CRAC improves on).

- :mod:`~repro.proxy.cma`          — the Cross-Memory-Attach IPC channel
  cost model (``process_vm_readv``/``process_vm_writev``), §4.4.4.
- :mod:`~repro.proxy.proxy_runtime`— :class:`NaiveProxyBackend`: every
  CUDA call is an RPC to a proxy process; referenced buffers are copied
  through CMA (the CMA/IPC column of Table 3).
- :mod:`~repro.proxy.crum`         — :class:`CrumBackend`: CRUM's
  smarter proxy with shadow-page UVM synchronization, its 6–12% runtime
  overhead structure, the read-modify-write-per-launch restriction, and
  the two-streams-one-page failure mode (§1, §2.3).
- :mod:`~repro.proxy.crcuda`       — :class:`CrcudaBackend`: CRCUDA's
  proxy with *no* UVA/UVM support at all.
- :mod:`~repro.proxy.checuda`      — :class:`CheCudaCheckpointer`: the
  pre-CUDA-4.0 destroy-and-restore strategy (works without UVA; fails
  deterministically once UVA/UVM state exists, §2.2).
"""

from repro.proxy.checuda import CheCudaCheckpointer
from repro.proxy.cma import CmaChannel
from repro.proxy.crcuda import CrcudaBackend
from repro.proxy.crum import CrumBackend
from repro.proxy.proxy_runtime import NaiveProxyBackend

__all__ = [
    "CmaChannel",
    "NaiveProxyBackend",
    "CrumBackend",
    "CrcudaBackend",
    "CheCudaCheckpointer",
]
