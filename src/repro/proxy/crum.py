"""CRUM baseline: proxy + shadow-page UVM (Garg et al., CLUSTER'18).

CRUM improves on the naive proxy by keeping *shadow pages* of managed
memory in the application process and synchronizing them with the proxy
around kernel launches (mprotect + userfaultfd traps). Its costs and
limitations, per the paper:

- **runtime overhead 6–12%** on real-world apps (§1): a per-call
  marshalling cost (smaller than buffer shipping, but ≈2–3 µs on every
  one of HPGMG's 35,000 calls/second) plus shadow-page synchronization
  around every kernel launch that touches managed memory;
- **read-modify-write restriction** (§2.3/§III-B of CRUM): supported
  applications must follow *CUDA-call → read UVM → modify → write UVM →
  next CUDA-call*. Host access to managed memory while a kernel is still
  in flight desynchronizes the shadow copy — detected and rejected here;
- **two concurrent streams writing the same managed page** breaks the
  shadow strategy outright (§1, contribution 2) — detected and rejected.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import UnsupportedFeatureError
from repro.core.replay_log import ReplayLog
from repro.cuda.api import CudaRuntime, ManagedUse
from repro.cuda.interface import CudaDispatchBase
from repro.gpu.streams import Stream
from repro.gpu.timing import DEFAULT_HOST_COSTS, NS_PER_S, HostCosts
from repro.gpu.uvm import UVM_PAGE, ManagedBuffer
from repro.proxy.cma import CmaChannel


class CrumBackend(CudaDispatchBase):
    """CRUM's proxy dispatch with shadow-page UVM synchronization."""

    mode = "crum"

    #: Marshalling cost per call beyond the CMA RPC itself (argument
    #: packing/unpacking in both processes), ns.
    marshal_ns = 1_400.0
    #: Cost per shadow page synchronized (mprotect + userfaultfd trap +
    #: bookkeeping), ns. "This interacted particularly badly with NVIDIA
    #: UVM" (§5, Case II).
    shadow_page_ns = 9_000.0

    def __init__(
        self,
        runtime: CudaRuntime,
        host_costs: HostCosts = DEFAULT_HOST_COSTS,
        channel: CmaChannel | None = None,
    ) -> None:
        super().__init__(runtime, host_costs)
        self.channel = channel if channel is not None else CmaChannel()
        self.shadow_pages_synced = 0
        #: resource-creation log for restart-time replay into a fresh
        #: proxy (CRUM's log-and-replay, inherited from CheCUDA's design)
        self.resource_log = ReplayLog()

    # -- resource logging (for CrumCheckpointer) ---------------------------------

    def malloc(self, nbytes: int) -> int:
        addr = super().malloc(nbytes)
        self.resource_log.record("malloc", nbytes, addr)
        return addr

    def free(self, addr: int) -> None:
        is_managed = isinstance(self.runtime.buffers.get(addr), ManagedBuffer)
        super().free(addr)
        self.resource_log.record("free_managed" if is_managed else "free", 0, addr)

    def malloc_host(self, nbytes: int) -> int:
        addr = super().malloc_host(nbytes)
        self.resource_log.record("malloc_host", nbytes, addr)
        return addr

    def free_host(self, addr: int) -> None:
        super().free_host(addr)
        self.resource_log.record("free_host", 0, addr)

    def malloc_managed(self, nbytes: int) -> int:
        addr = super().malloc_managed(nbytes)
        self.resource_log.record("malloc_managed", nbytes, addr)
        return addr

    # -- dispatch cost ----------------------------------------------------------

    def _charge_call(
        self,
        name: str,
        *,
        payload_bytes: int = 0,
        ship_in: Sequence[int] = (),
        ship_out: Sequence[int] = (),
    ) -> None:
        # CRUM ships only the marshalled arguments per call — device
        # buffers stay resident in the proxy (unlike the naive design) —
        # so ship_in/ship_out do not transfer wholesale.
        cost = (
            self.costs.native_dispatch_ns
            + self.marshal_ns
            + self.channel.rpc_cost_ns(min(payload_bytes, 4096))
        )
        self.process.advance(cost)

    # -- shadow-page UVM --------------------------------------------------------------

    def launch(self, name, fn=None, *, managed: Iterable[ManagedUse] = (), **kw):
        """Kernel launch with shadow-page synchronization around it."""
        managed = list(managed)
        self._check_stream_conflicts(managed, kw.get("stream"))
        sync_cost = self._shadow_sync_cost(managed)
        self.process.advance(sync_cost)  # pre-launch: shadow → proxy
        end = super().launch(name, fn, managed=managed, **kw)
        self.process.advance(sync_cost)  # post-launch: proxy → shadow
        return end

    def _shadow_sync_cost(self, managed: list[ManagedUse]) -> float:
        pages = 0
        nbytes = 0
        for use in managed:
            pages += (use.nbytes + UVM_PAGE - 1) // UVM_PAGE
            nbytes += use.nbytes
        if pages == 0:
            return 0.0
        self.shadow_pages_synced += pages
        return pages * self.shadow_page_ns + nbytes / 11.0e9 * NS_PER_S

    def managed_view(self, addr: int, nbytes: int, dtype=np.uint8, offset: int = 0):
        """Host access to managed memory through the shadow copy.

        Fails if any kernel that writes this buffer is still in flight:
        the read-modify-write-per-launch pattern CRUM requires (§2.3).
        """
        buf = self.runtime.buffers.get(addr)
        if isinstance(buf, ManagedBuffer):
            now = self.process.clock_ns
            for rec in buf.device_writes:
                if rec.end_ns > now:
                    raise UnsupportedFeatureError(
                        "CRUM shadow pages desynchronized: host accessed "
                        "managed memory while a kernel write was in flight "
                        "(application violates CRUM's read-modify-write-"
                        "per-CUDA-call pattern)"
                    )
        return super().managed_view(addr, nbytes, dtype, offset)

    def _check_stream_conflicts(
        self, managed: list[ManagedUse], stream: Stream | None
    ) -> None:
        """Reject the pattern CRUM cannot synchronize: this launch writes
        a managed page that a kernel on a *different* stream is still
        writing (§1: "CRUM's strategy fails when two concurrent CUDA
        streams write to the same memory page")."""
        sid = stream.sid if stream is not None else 0
        now = self.process.clock_ns
        for use in managed:
            if "w" not in use.mode:
                continue
            buf = self.runtime.buffers.get(use.addr)
            if not isinstance(buf, ManagedBuffer):
                continue
            lo, hi = buf.page_range(use.offset, use.nbytes)
            for rec in buf.device_writes:
                if (
                    rec.stream_sid != sid
                    and rec.end_ns > now
                    and rec.page_lo <= hi
                    and lo <= rec.page_hi
                ):
                    raise UnsupportedFeatureError(
                        "CRUM shadow pages cannot synchronize two concurrent "
                        f"streams writing managed page range [{lo}, {hi}] "
                        f"(conflicting stream {rec.stream_sid})"
                    )


class CrumCheckpointer:
    """CRUM's checkpoint/restart path (proxy-based; Garg et al. §IV).

    The application process holds no CUDA library, so DMTCP checkpoints
    it without any of CRAC's split-process machinery — that simplicity is
    what CRUM buys with its runtime overhead. The costs move elsewhere:

    - at checkpoint time, every active device/managed byte must be
      *drained through the proxy boundary* (GPU → proxy → CMA → app)
      before it can be saved;
    - at restart, a fresh proxy process is spawned (driver init), the
      resource log is replayed into it, and every byte crosses CMA again
      on the way back to the GPU.

    CRAC's single-address-space drain touches PCIe once; CRUM pays PCIe
    *plus* CMA in both directions. ``benchmarks/test_ablation_logging.py``
    quantifies the difference.
    """

    #: time to fork+exec and initialize a fresh proxy with the CUDA
    #: driver (driver init dominates), ns
    PROXY_SPAWN_NS = 1_200_000_000.0

    def __init__(self, backend: CrumBackend) -> None:
        self.backend = backend

    def checkpoint(self) -> dict:
        """Drain device state through the proxy and snapshot it."""
        backend = self.backend
        rt = backend.runtime
        proc = rt.process
        t0 = proc.clock_ns
        rt.cudaDeviceSynchronize()
        buffers: dict[int, dict] = {}
        cma_bytes = 0
        for buf in rt.active_allocations():
            is_managed = isinstance(buf, ManagedBuffer)
            kind = "managed" if is_managed else buf.kind
            buffers[buf.addr] = {
                "kind": kind,
                "size": buf.size,
                "snapshot": buf.contents.snapshot(),
            }
            if kind != "host-pinned":
                # GPU → proxy over PCIe, then proxy → app over CMA.
                proc.advance(buf.size / rt.device.spec.pcie_bw * NS_PER_S)
                proc.advance(backend.channel.transfer_cost_ns(buf.size))
                cma_bytes += buf.size
        image = {
            "buffers": buffers,
            "log": self.backend.resource_log,
            "cma_bytes": cma_bytes,
            "checkpoint_ns": proc.clock_ns - t0,
        }
        return image

    def restart(self, image: dict, fresh_runtime: CudaRuntime) -> float:
        """Spawn a fresh proxy, replay resources, refill through CMA.

        Returns the restart cost in ns (charged to the fresh runtime's
        process clock).
        """
        proc = fresh_runtime.process
        t0 = proc.clock_ns
        proc.advance(self.PROXY_SPAWN_NS)
        log: ReplayLog = image["log"]
        log.replay(fresh_runtime)
        for addr, entry in image["buffers"].items():
            if addr not in fresh_runtime.buffers:
                continue
            fresh_runtime.buffers[addr].contents.restore(entry["snapshot"])
            if entry["kind"] != "host-pinned":
                # app → proxy over CMA, then proxy → GPU over PCIe.
                proc.advance(
                    self.backend.channel.transfer_cost_ns(entry["size"])
                )
                proc.advance(
                    entry["size"] / fresh_runtime.device.spec.pcie_bw * NS_PER_S
                )
        self.backend.runtime = fresh_runtime
        self.backend.process = proc
        return proc.clock_ns - t0
