"""Documentation-coverage meta-test: every public item is documented.

The deliverable requires doc comments on every public item; this test
enforces it mechanically so regressions fail in CI rather than in
review.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def walk_modules():
    mods = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mods.append(importlib.import_module(info.name))
    return mods


MODULES = walk_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-exports documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = [
        f"{module.__name__}.{name}"
        for name, obj in public_members(module)
        if not (obj.__doc__ and obj.__doc__.strip())
    ]
    assert not undocumented, f"missing docstrings: {undocumented}"


def _documented_in_bases(cls, meth_name: str) -> bool:
    """Overrides inherit the base method's documentation (PEP 257)."""
    for base in cls.__mro__[1:]:
        base_meth = vars(base).get(meth_name)
        if base_meth is not None and getattr(base_meth, "__doc__", None):
            return True
    return False


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_methods_documented(module):
    undocumented = []
    for cls_name, cls in public_members(module):
        if not inspect.isclass(cls):
            continue
        for meth_name, meth in vars(cls).items():
            if meth_name.startswith("_"):
                continue
            if not inspect.isfunction(meth):
                continue
            if meth.__doc__ and meth.__doc__.strip():
                continue
            if _documented_in_bases(cls, meth_name):
                continue
            undocumented.append(f"{module.__name__}.{cls_name}.{meth_name}")
    assert not undocumented, f"missing docstrings: {undocumented}"
