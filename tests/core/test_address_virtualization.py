"""Address virtualization — the first of §3.2.4's three future-work
optimizations, implemented: the application holds stable virtual
pointers and restart no longer depends on allocator determinism, ASLR,
or the same-platform requirement."""

import numpy as np
import pytest

from repro.core import CracSession
from repro.cuda.api import FatBinary, ManagedUse
from repro.gpu.uvm import UVM_PAGE

FB = FatBinary("av.fatbin", ("k",))


def make_session(**kw):
    session = CracSession(seed=141, address_virtualization=True, **kw)
    session.backend.register_app_binary(FB)
    return session


class TestVirtualPointers:
    def test_app_sees_virtual_range(self):
        session = make_session()
        p = session.backend.malloc(4096)
        assert p >= session.backend.VIRT_BASE
        assert p not in session.runtime.buffers  # not the real address

    def test_data_path_translates(self):
        session = make_session()
        b = session.backend
        p = b.malloc(1024)
        data = np.arange(256, dtype=np.float32)
        b.memcpy(p, data, data.nbytes, "h2d")
        out = np.zeros_like(data)
        b.memcpy(out, p, out.nbytes, "d2h")
        np.testing.assert_array_equal(out, data)

    def test_views_translate(self):
        session = make_session()
        b = session.backend
        p = b.malloc(64)
        b.device_view(p, 8)[:] = np.frombuffer(b"virtdata", np.uint8)
        assert b.device_view(p, 8).tobytes() == b"virtdata"

    def test_managed_translates(self):
        session = make_session()
        b = session.backend
        p = b.malloc_managed(UVM_PAGE)
        v = b.managed_view(p, 16, np.float32)
        v[:] = 2.5
        b.launch("k", managed=[ManagedUse(p, 0, UVM_PAGE, "rw")])
        b.device_synchronize()
        assert np.all(b.managed_view(p, 16, np.float32) == 2.5)

    def test_free_through_virtual_pointer(self):
        session = make_session()
        b = session.backend
        p = b.malloc(64)
        b.free(p)  # must translate and unmap the binding

    def test_pointer_attributes_translate(self):
        session = make_session()
        b = session.backend
        p = b.malloc_managed(UVM_PAGE)
        assert b.pointer_get_attributes(p)["type"] == "managed"


class TestVirtualizedRestart:
    def test_restart_survives_divergent_replay(self):
        """Make the replayed allocations land at *different* real
        addresses (an alloc/free hole the fresh allocator fills
        differently is simulated by pre-touching the fresh arena):
        baseline CRAC would raise ReplayDivergenceError; virtualization
        patches the pointer table and continues."""
        session = make_session()
        b = session.backend
        p = b.malloc(256)
        b.device_view(p, 8)[:] = np.frombuffer(b"survives", np.uint8)
        old_real = b._to_real(p)
        image = session.checkpoint()
        session.kill()

        # Divert the fresh allocator: allocate a block before the replay
        # runs so the replayed malloc cannot land at its original spot.
        from repro.core.halves import SplitProcess as _SP

        original_init = _SP.__init__

        def diverted_init(self_sp, **kw):
            original_init(self_sp, **kw)
            if not kw.get("load_upper", True):
                self_sp.runtime.cudaMalloc(4096)  # occupies the old slot

        _SP.__init__ = diverted_init
        try:
            report = session.restart(image)
        finally:
            _SP.__init__ = original_init
        # The virtual pointer still resolves, now to a moved real address.
        assert b.device_view(p, 8).tobytes() == b"survives"
        assert b._to_real(p) != old_real
        assert report.replayed_calls >= 1

    def test_cross_platform_restart_allowed_with_virtualization(self):
        """The same-platform requirement disappears: a V100 image
        restarts on a K600 node (capacity permitting)."""
        session = make_session(gpu="V100")
        b = session.backend
        p = b.malloc(256)
        b.device_view(p, 4)[:] = np.frombuffer(b"xGPU", np.uint8)
        image = session.checkpoint()
        session.kill()

        other = CracSession(seed=150, gpu="K600", address_virtualization=True)
        # Carry the application's handle table over (same app process).
        other.backend.fatbin_registry = session.backend.fatbin_registry
        other.backend._v2r = session.backend._v2r
        other.backend.live_streams = session.backend.live_streams
        other.backend.live_events = session.backend.live_events
        other.restart(image)
        assert other.backend.device_view(p, 4).tobytes() == b"xGPU"

    def test_baseline_still_rejects_cross_platform(self):
        session = CracSession(seed=151, gpu="V100")
        session.backend.register_app_binary(FB)
        session.backend.malloc(64)
        image = session.checkpoint()
        session.kill()
        other = CracSession(seed=152, gpu="K600")
        from repro.errors import RestartError

        with pytest.raises(RestartError, match="platform mismatch"):
            other.restart(image)

    def test_virtualized_full_cycle_content_exact(self):
        session = make_session()
        b = session.backend
        ptrs = [b.malloc(128) for _ in range(6)]
        for i, p in enumerate(ptrs):
            b.device_view(p, 16, np.float32)[:] = float(i)
        b.free(ptrs[3])
        image = session.checkpoint()
        session.kill()
        session.restart(image)
        for i, p in enumerate(ptrs):
            if i == 3:
                continue
            v = session.backend.device_view(p, 16, np.float32)
            np.testing.assert_array_equal(v, np.full(4, float(i), np.float32))
