"""Restart platform check: §3.2.4's same-platform requirement."""

import pytest

from repro.core import CracSession
from repro.cuda.api import FatBinary
from repro.errors import RestartError

FB = FatBinary("pc.fatbin", ("k",))


def take_image(gpu="V100", n_gpus=1):
    session = CracSession(seed=121, gpu=gpu, n_gpus=n_gpus)
    session.backend.register_app_binary(FB)
    session.backend.malloc(256)
    image = session.checkpoint()
    session.kill()
    return session, image


class TestPlatformCheck:
    def test_same_platform_restarts(self):
        session, image = take_image()
        session.restart(image)  # no error

    def test_different_gpu_model_rejected(self):
        _, image = take_image(gpu="V100")
        other = CracSession(seed=122, gpu="K600")
        with pytest.raises(RestartError, match="platform mismatch"):
            other.restart(image)

    def test_different_gpu_count_rejected(self):
        _, image = take_image(n_gpus=2)
        other = CracSession(seed=123, n_gpus=1)
        with pytest.raises(RestartError, match="platform mismatch"):
            other.restart(image)

    def test_platform_recorded_in_image(self):
        _, image = take_image(gpu="K600", n_gpus=1)
        plat = image.blob("crac/platform")
        assert plat["gpu"] == "Quadro K600"
        assert plat["n_gpus"] == 1
        assert tuple(plat["compute_capability"]) == (3, 0)
