"""Property-based tests: log-and-replay determinism under arbitrary
allocation histories (the heart of §3.2.3/§3.2.4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CracBackend, SplitProcess

# Op language: allocate from a family, or free the i-th live allocation.
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.sampled_from(["malloc", "malloc_host", "malloc_managed", "host_alloc"]),
            st.integers(min_value=1, max_value=1 << 20),
        ),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=100)),
    ),
    max_size=50,
)


def apply_ops(backend, ops):
    """Drive a backend with an op list; returns {addr: family} live set."""
    live: list[tuple[int, str]] = []
    for kind, arg in ops:
        if kind == "free":
            if not live:
                continue
            addr, fam = live.pop(arg % len(live))
            if fam in ("malloc", "malloc_managed"):
                backend.free(addr)
            else:
                backend.free_host(addr)
        else:
            addr = getattr(backend, kind)(arg)
            live.append((addr, kind))
    return dict(live)


@settings(max_examples=80, deadline=None)
@given(ops_strategy)
def test_replay_recreates_every_live_allocation(ops):
    split = SplitProcess(seed=17)
    backend = CracBackend(split.runtime)
    live = apply_ops(backend, ops)

    fresh = SplitProcess(seed=17)
    backend.log.replay(fresh.runtime)
    for addr, fam in live.items():
        if fam == "host_alloc":
            continue  # re-registered separately, not replayed
        assert addr in fresh.runtime.buffers, hex(addr)


@settings(max_examples=80, deadline=None)
@given(ops_strategy)
def test_replay_active_set_matches_log_view(ops):
    """The log's notion of 'active' equals the runtime's live buffers."""
    split = SplitProcess(seed=18)
    backend = CracBackend(split.runtime)
    apply_ops(backend, ops)
    log_active = set(backend.log.active_allocations())
    runtime_active = {b.addr for b in split.runtime.active_allocations()}
    assert log_active == runtime_active


@settings(max_examples=60, deadline=None)
@given(ops_strategy)
def test_double_replay_is_deterministic(ops):
    """Replaying the same log into two fresh libraries lands the same."""
    split = SplitProcess(seed=19)
    backend = CracBackend(split.runtime)
    apply_ops(backend, ops)
    f1, f2 = SplitProcess(seed=19), SplitProcess(seed=19)
    backend.log.replay(f1.runtime)
    backend.log.replay(f2.runtime)
    assert set(f1.runtime.buffers) == set(f2.runtime.buffers)
