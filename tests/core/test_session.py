"""End-to-end CRAC session tests: checkpoint → kill → restart."""

import numpy as np
import pytest

from repro.core import CracSession
from repro.cuda.api import FatBinary, ManagedUse
from repro.gpu.uvm import UVM_PAGE

FB = FatBinary("app.fatbin", ("scale", "k"))


@pytest.fixture
def session():
    return CracSession(seed=8)


def run_app_phase1(session):
    """Allocate, compute, leave state on the device and in managed memory."""
    b = session.backend
    b.register_app_binary(FB)
    state = {}
    state["dev"] = b.malloc(4 * 256)
    x = np.arange(256, dtype=np.float32)
    b.memcpy(state["dev"], x, x.nbytes, "h2d")
    view = b.device_view(state["dev"], 4 * 256, np.float32)
    b.launch("scale", lambda: view.__imul__(2.0))

    state["managed"] = b.malloc_managed(UVM_PAGE)
    mv = b.managed_view(state["managed"], 4 * 16, np.float32)
    mv[:] = 7.0
    b.launch(
        "k",
        lambda: None,
        managed=[ManagedUse(state["managed"], 0, UVM_PAGE, "rw")],
    )

    state["pinned"] = b.malloc_host(1024)
    b.device_view(state["pinned"], 5)[:] = np.frombuffer(b"hello", np.uint8)
    state["hostalloc"] = b.host_alloc(2048)
    b.device_view(state["hostalloc"], 5)[:] = np.frombuffer(b"world", np.uint8)

    state["stream"] = b.stream_create()
    b.device_synchronize()
    state["expect_dev"] = (x * 2.0).copy()
    return state


class TestCheckpoint:
    def test_checkpoint_excludes_lower_half(self, session):
        run_app_phase1(session)
        image = session.checkpoint()
        for region in image.regions:
            assert not region.tag.startswith("lower:")

    def test_checkpoint_stages_active_buffers(self, session):
        state = run_app_phase1(session)
        image = session.checkpoint()
        buffers = image.blob("crac/buffers")
        assert state["dev"] in buffers
        assert state["managed"] in buffers
        assert state["pinned"] in buffers
        assert state["hostalloc"] in buffers

    def test_checkpoint_size_counts_buffers_not_arenas(self, session):
        """§3.2.3: only active mallocs are saved, not the 64 MB arenas."""
        run_app_phase1(session)
        image = session.checkpoint()
        assert image.blob_bytes < 1 << 20  # few KB of buffers, no arena

    def test_checkpoint_time_recorded(self, session):
        run_app_phase1(session)
        image = session.checkpoint()
        assert image.checkpoint_time_ns > 0

    def test_checkpoint_drains_pending_work(self, session):
        b = session.backend
        b.register_app_binary(FB)
        b.launch("k", duration_ns=50_000_000)  # 50 ms of device work
        t0 = session.process.clock_ns
        session.checkpoint()
        assert session.process.clock_ns - t0 >= 50_000_000


class TestRestart:
    def test_full_cycle_restores_all_contents(self, session):
        state = run_app_phase1(session)
        image = session.checkpoint()
        session.kill()
        report = session.restart(image)
        b = session.backend

        dev = b.device_view(state["dev"], 4 * 256, np.float32)
        np.testing.assert_array_equal(dev, state["expect_dev"])
        mv = b.managed_view(state["managed"], 4 * 16, np.float32)
        np.testing.assert_array_equal(mv, np.full(16, 7.0, np.float32))
        assert b.device_view(state["pinned"], 5).tobytes() == b"hello"
        assert b.device_view(state["hostalloc"], 5).tobytes() == b"world"
        assert report.replayed_calls > 0

    def test_restart_restores_upper_memory(self, session):
        upper = session.split.upper_mmap(8192)
        session.process.vas.write(upper, b"app state survives")
        image = session.checkpoint()
        session.kill()
        session.restart(image)
        assert session.process.vas.read(upper, 18) == b"app state survives"

    def test_app_continues_after_restart(self, session):
        state = run_app_phase1(session)
        image = session.checkpoint()
        session.kill()
        session.restart(image)
        b = session.backend
        # Continue computing with the same pointers and handles.
        view = b.device_view(state["dev"], 4 * 256, np.float32)
        b.launch("scale", lambda: view.__imul__(10.0), stream=state["stream"])
        b.device_synchronize()
        np.testing.assert_array_equal(
            b.device_view(state["dev"], 4 * 256, np.float32),
            state["expect_dev"] * 10.0,
        )

    def test_restart_reregisters_fatbins(self, session):
        run_app_phase1(session)
        image = session.checkpoint()
        session.kill()
        report = session.restart(image)
        assert report.reregistered_fatbins >= 1
        session.backend.launch("k")  # would fail if not re-registered

    def test_restart_adopts_streams(self, session):
        state = run_app_phase1(session)
        image = session.checkpoint()
        session.kill()
        report = session.restart(image)
        assert report.adopted_streams == 1
        assert state["stream"].sid in session.runtime.streams

    def test_virtual_time_monotone_across_restart(self, session):
        run_app_phase1(session)
        t_before = session.process.clock_ns
        image = session.checkpoint()
        session.kill()
        session.restart(image)
        assert session.process.clock_ns >= t_before

    def test_malloc_after_restart_works(self, session):
        run_app_phase1(session)
        image = session.checkpoint()
        session.kill()
        session.restart(image)
        p = session.backend.malloc(64)
        assert p in session.runtime.buffers

    def test_second_checkpoint_after_restart(self, session):
        state = run_app_phase1(session)
        image1 = session.checkpoint()
        session.kill()
        session.restart(image1)
        image2 = session.checkpoint()
        session.kill()
        session.restart(image2)
        dev = session.backend.device_view(state["dev"], 4 * 256, np.float32)
        np.testing.assert_array_equal(dev, state["expect_dev"])

    def test_old_image_without_pcie_bytes_charges_resident_pages(self):
        """Images written before entries carried ``pcie_bytes`` must fall
        back to the old accounting: device-resident managed pages cross
        PCIe at refill time, not zero bytes."""
        session = CracSession(seed=8)
        b = session.backend
        b.register_app_binary(FB)
        mgd = b.malloc_managed(4 * UVM_PAGE)
        b.launch(
            "k", lambda: None, managed=[ManagedUse(mgd, 0, 4 * UVM_PAGE, "w")]
        )
        b.device_synchronize()
        image = session.checkpoint()
        entry = image.blob("crac/buffers")[mgd]
        resident = int((entry["residency"] == 1).sum())
        assert resident == 4
        del entry["pcie_bytes"]  # simulate the old on-disk entry format

        session.kill()
        report = session.restart(image)
        assert report.refilled_bytes >= resident * UVM_PAGE

    def test_restart_time_grows_with_log_length(self):
        """Streamcluster/Heartwall behaviour: many mallocs/frees ⇒ restart
        slower than checkpoint (§4.4.1)."""

        def cycle(n_allocs):
            s = CracSession(seed=3)
            b = s.backend
            b.register_app_binary(FB)
            for _ in range(n_allocs):
                p = b.malloc(4096)
                b.free(p)
            img = s.checkpoint()
            s.kill()
            return s.restart(img).restart_time_ns

        assert cycle(2000) > cycle(10)


class TestResumeAfterCheckpoint:
    def test_process_continues_without_restart(self, session):
        """Checkpoint-and-continue (resume) must not disturb the app."""
        state = run_app_phase1(session)
        session.checkpoint()
        b = session.backend
        view = b.device_view(state["dev"], 4 * 256, np.float32)
        b.launch("scale", lambda: view.__imul__(3.0))
        b.device_synchronize()
        np.testing.assert_array_equal(
            b.device_view(state["dev"], 4 * 256, np.float32),
            state["expect_dev"] * 3.0,
        )
