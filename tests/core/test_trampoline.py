"""Tests for the CRAC trampoline backend: costs, logging, virtualization."""

import pytest

from repro.core import CracBackend, SplitProcess
from repro.cuda.api import FatBinary
from repro.cuda.interface import NativeBackend
from repro.gpu.timing import DEFAULT_HOST_COSTS
from repro.linux.process import SYSCALL_NS, WRFSBASE_NS

FB = FatBinary("app.fatbin", ("k",))


def make_backend(fsgsbase=False, seed=2):
    split = SplitProcess(seed=seed, fsgsbase=fsgsbase)
    backend = CracBackend(split.runtime)
    backend.register_app_binary(FB)
    return split, backend


class TestTrampolineCost:
    def test_each_call_does_two_fs_switches(self):
        split, backend = make_backend()
        before = split.process.fs_switch_count
        backend.malloc(64)
        assert split.process.fs_switch_count - before == 2

    def test_crac_call_costs_more_than_native(self):
        split_c, crac = make_backend()
        split_n = SplitProcess(seed=2)
        native = NativeBackend(split_n.runtime)
        t0 = split_c.process.clock_ns
        crac.malloc(64)
        crac_cost = split_c.process.clock_ns - t0
        t0 = split_n.process.clock_ns
        native.malloc(64)
        native_cost = split_n.process.clock_ns - t0
        assert crac_cost > native_cost

    def test_overhead_is_small_fraction_of_dispatch(self):
        """CRAC's per-call overhead must support ~1% app-level overhead:
        two fs switches + body ≪ typical inter-call gap (~10 µs)."""
        costs = DEFAULT_HOST_COSTS
        per_call_extra = 2 * SYSCALL_NS + costs.trampoline_body_ns
        assert per_call_extra < 1_000  # < 1 µs

    def test_fsgsbase_reduces_cost(self):
        split_u, crac_u = make_backend(fsgsbase=False)
        split_f, crac_f = make_backend(fsgsbase=True)
        t0 = split_u.process.clock_ns
        for _ in range(100):
            crac_u.device_synchronize()
        cost_u = split_u.process.clock_ns - t0
        t0 = split_f.process.clock_ns
        for _ in range(100):
            crac_f.device_synchronize()
        cost_f = split_f.process.clock_ns - t0
        assert cost_f < cost_u
        # The saving per call is exactly two switch-cost deltas.
        expected = 100 * 2 * (SYSCALL_NS - WRFSBASE_NS)
        assert cost_u - cost_f == pytest.approx(expected, rel=0.01)


class TestInterposition:
    def test_malloc_family_is_logged(self):
        _, backend = make_backend()
        p1 = backend.malloc(64)
        p2 = backend.malloc_managed(1 << 16)
        p3 = backend.malloc_host(128)
        p4 = backend.host_alloc(256)
        backend.free(p1)
        ops = [(e.op, e.addr) for e in backend.log.entries]
        assert ops == [
            ("malloc", p1),
            ("malloc_managed", p2),
            ("malloc_host", p3),
            ("host_alloc", p4),
            ("free", p1),
        ]

    def test_managed_free_logged_as_managed(self):
        _, backend = make_backend()
        p = backend.malloc_managed(1 << 16)
        backend.free(p)
        assert backend.log.entries[-1].op == "free_managed"

    def test_non_malloc_calls_not_logged(self):
        _, backend = make_backend()
        backend.device_synchronize()
        backend.launch("k")
        assert len(backend.log) == 0

    def test_active_allocations_from_log(self):
        _, backend = make_backend()
        p1 = backend.malloc(64)
        p2 = backend.malloc(64)
        backend.free(p1)
        active = backend.log.active_allocations()
        assert set(active) == {p2}


class TestFatbinVirtualization:
    def test_app_sees_virtual_handles(self):
        _, backend = make_backend()
        h = backend.register_fatbin(FatBinary("x", ("ka",)))
        assert h in backend.fatbin_registry
        assert backend.fatbin_registry[h]["real"] != 0

    def test_unregister_removes_entry(self):
        _, backend = make_backend()
        h = backend.register_fatbin(FatBinary("x", ("ka",)))
        backend.unregister_fatbin(h)
        assert h not in backend.fatbin_registry

    def test_reregister_patches_handles_and_keeps_kernels_launchable(self):
        split, backend = make_backend()
        fresh = SplitProcess(seed=7)
        backend.swap_runtime(fresh.runtime)
        patches = backend.reregister_fatbins()
        assert len(patches) == 1  # the app fatbin
        backend.launch("k")  # works against the fresh library


class TestHandleTracking:
    def test_streams_and_events_tracked(self):
        _, backend = make_backend()
        s = backend.stream_create()
        e = backend.event_create()
        assert s.sid in backend.live_streams
        assert e.eid in backend.live_events
        backend.stream_destroy(s)
        backend.event_destroy(e)
        assert not backend.live_streams
        assert not backend.live_events
