"""Tests for log-and-replay (§3.2.3/§3.2.4)."""

import pytest

from repro.core import CracBackend, ReplayLog, SplitProcess
from repro.core.replay_log import LogEntry
from repro.errors import ReplayDivergenceError


def record_workload(backend):
    """A malloc/free mix covering every family."""
    ptrs = {}
    ptrs["d1"] = backend.malloc(1024)
    ptrs["d2"] = backend.malloc(4096)
    ptrs["m1"] = backend.malloc_managed(1 << 16)
    ptrs["h1"] = backend.malloc_host(512)
    ptrs["ha1"] = backend.host_alloc(2048)
    backend.free(ptrs["d1"])
    ptrs["d3"] = backend.malloc(333)
    backend.free_host(ptrs["h1"])
    ptrs["h2"] = backend.malloc_host(512)
    return ptrs


class TestReplay:
    def test_replay_reproduces_all_addresses(self):
        split = SplitProcess(seed=5)
        backend = CracBackend(split.runtime)
        record_workload(backend)
        fresh = SplitProcess(seed=5)
        backend.log.replay(fresh.runtime)
        live_old = backend.log.active_allocations()
        for addr in live_old:
            if live_old[addr].op == "host_alloc":
                continue  # re-registered, not replayed
            assert addr in fresh.runtime.buffers

    def test_replay_counts_calls(self):
        split = SplitProcess(seed=5)
        backend = CracBackend(split.runtime)
        record_workload(backend)
        fresh = SplitProcess(seed=5)
        replayed = backend.log.replay(fresh.runtime)
        # all 9 ops minus host_alloc (skipped) = 8
        assert replayed == 8

    def test_divergence_detected(self):
        log = ReplayLog()
        log.record("malloc", 64, 0xDEAD_0000)  # impossible address
        fresh = SplitProcess(seed=5)
        with pytest.raises(ReplayDivergenceError):
            log.replay(fresh.runtime)

    def test_hostalloc_free_skipped_during_replay(self):
        split = SplitProcess(seed=6)
        backend = CracBackend(split.runtime)
        p = backend.host_alloc(4096)
        backend.free_host(p)  # freed before checkpoint
        fresh = SplitProcess(seed=6)
        backend.log.replay(fresh.runtime)  # must not try to free p

    def test_replay_on_different_seed_lower_layout_still_works(self):
        """Same platform ⇒ same deterministic layout even with another
        seed, because ASLR is off; the seed only affects ASLR draws."""
        split = SplitProcess(seed=1)
        backend = CracBackend(split.runtime)
        record_workload(backend)
        fresh = SplitProcess(seed=99)
        backend.log.replay(fresh.runtime)


class TestActiveAllocations:
    def test_alloc_then_free_not_active(self):
        log = ReplayLog()
        log.record("malloc", 64, 100)
        log.record("free", 0, 100)
        assert log.active_allocations() == {}

    def test_realloc_at_same_address_active(self):
        log = ReplayLog()
        log.record("malloc", 64, 100)
        log.record("free", 0, 100)
        log.record("malloc", 64, 100)
        assert set(log.active_allocations()) == {100}

    def test_count_by_op(self):
        log = ReplayLog()
        log.record("malloc", 64, 1)
        log.record("malloc", 64, 2)
        log.record("free", 0, 1)
        assert log.count("malloc") == 2
        assert log.count("free") == 1
        assert log.count("malloc", "free") == 3

    def test_entries_are_immutable(self):
        e = LogEntry("malloc", 64, 1)
        with pytest.raises(AttributeError):
            e.addr = 2
