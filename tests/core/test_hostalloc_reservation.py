"""Regression: post-restart cudaHostAlloc must not collide with
re-registered buffers (found by the randomized differential test).

Before the fix, a restart re-registered active cudaHostAlloc buffers at
their original addresses, but the *fresh* hostalloc arena had no record
of them — the next cudaHostAlloc handed out the same address, silently
aliasing two live buffers. Real systems avoid this because the restored
pages are still mapped, so the library's mmap lands elsewhere; the
arena's ``reserve()`` models exactly that.
"""

import numpy as np
import pytest

from repro.errors import CudaError
from repro.core import CracSession
from repro.cuda.api import FatBinary
from repro.gpu.memory import ARENA_CHUNK, ArenaAllocator

FB = FatBinary("resv.fatbin", ("k",))


class TestArenaReserve:
    def make(self):
        next_addr = [0x7000_0000]

        def mmap_fn(size):
            a = next_addr[0]
            next_addr[0] += (size + 0xFFFF) & ~0xFFFF
            return a

        return ArenaAllocator(mmap_fn, 1 << 34)

    def test_reserved_range_never_allocated(self):
        a = self.make()
        base = a.alloc(4096)
        a.free(base)
        a.reserve(base, 4096)
        p = a.alloc(4096)
        assert p != base

    def test_reserve_grows_arena_when_needed(self):
        a = self.make()
        # Reserve an address the (empty) allocator has never mmap'd: it
        # must grow deterministically until the range is covered.
        probe = self.make()
        target = probe.alloc(1024)  # where the first alloc would land
        a.reserve(target, 1024)
        assert target in a.active

    def test_reserve_unreachable_address_fails(self):
        a = self.make()
        with pytest.raises(CudaError):
            a.reserve(0x1, 64)  # below any arena this allocator can make

    def test_reserve_middle_of_block_splits(self):
        a = self.make()
        first = a.alloc(256)
        a.free(first)
        a.reserve(first + ARENA_CHUNK // 2, 4096)
        # Both sides of the reservation stay allocatable.
        p1 = a.alloc(256)
        assert p1 == first


class TestSessionRegression:
    def test_hostalloc_after_restart_does_not_alias(self):
        session = CracSession(seed=111)
        b = session.backend
        b.register_app_binary(FB)
        p1 = b.host_alloc(4096)
        b.device_view(p1, 8)[:] = np.frombuffer(b"original", np.uint8)
        image = session.checkpoint()
        session.kill()
        session.restart(image)

        b = session.backend
        p2 = b.host_alloc(4096)  # must NOT reuse p1's address
        assert p2 != p1
        b.device_view(p2, 8)[:] = np.frombuffer(b"newbuffr", np.uint8)
        assert b.device_view(p1, 8).tobytes() == b"original"

    def test_freed_registered_buffer_address_reusable(self):
        session = CracSession(seed=112)
        b = session.backend
        b.register_app_binary(FB)
        p1 = b.host_alloc(4096)
        image = session.checkpoint()
        session.kill()
        session.restart(image)
        b = session.backend
        b.free_host(p1)  # releases the restart-time reservation
        p2 = b.host_alloc(4096)
        assert p2 == p1  # deterministic reuse once genuinely free
