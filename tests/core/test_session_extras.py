"""Additional session semantics: context manager, double restart from
one image, event handles across restart."""

import numpy as np
import pytest

from repro.core import CracSession
from repro.cuda.api import FatBinary

FB = FatBinary("se.fatbin", ("k",))


class TestContextManager:
    def test_exit_kills_process(self):
        with CracSession(seed=161) as session:
            session.backend.register_app_binary(FB)
            proc = session.process
            assert proc.alive
        assert not proc.alive

    def test_exit_after_manual_kill_is_fine(self):
        with CracSession(seed=162) as session:
            session.kill()


class TestDoubleRestart:
    def test_two_failures_same_image(self):
        """A node can die twice; the same image restarts both times and
        rolls state back to the checkpoint each time."""
        session = CracSession(seed=163)
        b = session.backend
        b.register_app_binary(FB)
        p = b.malloc(64)
        b.device_view(p, 4)[:] = np.frombuffer(b"ckpt", np.uint8)
        image = session.checkpoint()

        # First failure + restart; then the app advances state...
        session.kill()
        session.restart(image)
        session.backend.device_view(p, 4)[:] = np.frombuffer(b"late", np.uint8)
        # ...and a second failure restores the *checkpoint* state again.
        session.kill()
        session.restart(image)
        assert session.backend.device_view(p, 4).tobytes() == b"ckpt"
        assert len(session.restarts) == 2

    def test_image_not_mutated_by_restart(self):
        session = CracSession(seed=164)
        b = session.backend
        b.register_app_binary(FB)
        b.malloc(64)
        image = session.checkpoint()
        checksum = image.content_checksum()
        session.kill()
        session.restart(image)
        assert image.content_checksum() == checksum


class TestEventsAcrossRestart:
    def test_recorded_event_usable_after_restart(self):
        session = CracSession(seed=165)
        b = session.backend
        b.register_app_binary(FB)
        s = b.stream_create()
        e1 = b.event_create()
        b.event_record(e1, s)
        b.launch("k", duration_ns=1_000_000, stream=s)
        e2 = b.event_create()
        b.event_record(e2, s)
        b.device_synchronize()
        elapsed_before = b.event_elapsed_ms(e1, e2)

        image = session.checkpoint()
        session.kill()
        report = session.restart(image)
        assert report.adopted_events == 2
        # The app's recorded timestamps survive (virtualized handles).
        assert b.event_elapsed_ms(e1, e2) == elapsed_before
        # New events work against the fresh library.
        e3 = b.event_create()
        b.event_record(e3, s)
        b.event_synchronize(e3)
