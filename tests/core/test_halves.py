"""Tests for split-process construction (Figure 1)."""

import pytest

from repro.core.halves import ARENA_WINDOWS, ENTRY_POINTS, SplitProcess
from repro.linux.loader import LOWER_HALF_WINDOW


@pytest.fixture
def split():
    return SplitProcess(seed=4)


class TestConstruction:
    def test_lower_half_loaded_first_and_in_window(self, split):
        lo, hi = LOWER_HALF_WINDOW
        for start, size in split.lower.regions:
            assert lo <= start and start + size <= hi

    def test_upper_half_outside_lower_window(self, split):
        lo, hi = LOWER_HALF_WINDOW
        for start, size in split.upper.regions:
            assert start + size <= lo or start >= hi

    def test_aslr_disabled(self, split):
        """CRAC disables ASLR via personality (§3.2.4)."""
        assert not split.process.vas.aslr

    def test_entry_table_written_into_lower_half(self, split):
        table_addr = split.entry_table.table_addr
        assert split.loader.half_of(table_addr) == "lower"
        # The table holds the entry addresses, little-endian.
        first = int.from_bytes(split.process.vas.read(table_addr, 8), "little")
        assert first == split.entry_table.resolve(ENTRY_POINTS[0])

    def test_entry_table_covers_runtime_api(self, split):
        for name in ("cudaMalloc", "cudaLaunchKernel", "__cudaRegisterFatBinary"):
            addr = split.entry_table.resolve(name)
            assert split.loader.half_of(addr) == "lower"

    def test_layout_is_deterministic_across_processes(self):
        s1, s2 = SplitProcess(seed=9), SplitProcess(seed=9)
        assert s1.lower.regions == s2.lower.regions
        assert s1.entry_table.entries == s2.entry_table.entries

    def test_skip_upper(self):
        s = SplitProcess(seed=1, load_upper=False)
        assert s.upper is None
        assert s.loader.ranges("upper") == []


class TestArenaCarving:
    def test_device_arena_lands_in_its_subwindow(self, split):
        addr = split.runtime.cudaMalloc(1024)
        lo, hi = ARENA_WINDOWS["cuda-device-arena"]
        assert lo <= addr < hi

    def test_families_live_in_disjoint_subwindows(self, split):
        rt = split.runtime
        d = rt.cudaMalloc(64)
        p = rt.cudaMallocHost(64)
        h = rt.cudaHostAlloc(64)
        m = rt.cudaMallocManaged(64)
        windows = [
            ARENA_WINDOWS["cuda-device-arena"],
            ARENA_WINDOWS["cuda-pinned-arena"],
            ARENA_WINDOWS["cuda-hostalloc-arena"],
            ARENA_WINDOWS["cuda-managed-arena"],
        ]
        for ptr, (lo, hi) in zip((d, p, h, m), windows):
            assert lo <= ptr < hi

    def test_family_addresses_independent_of_interleaving(self):
        """The property that lets CRAC skip cudaHostAlloc during replay."""
        s1 = SplitProcess(seed=3)
        d1 = s1.runtime.cudaMalloc(128)
        s1.runtime.cudaHostAlloc(256)  # interleaved hostAlloc
        m1 = s1.runtime.cudaMallocManaged(512)

        s2 = SplitProcess(seed=3)
        d2 = s2.runtime.cudaMalloc(128)
        m2 = s2.runtime.cudaMallocManaged(512)  # no hostAlloc this time

        assert (d1, m1) == (d2, m2)

    def test_upper_mmap_tracked(self, split):
        addr = split.upper_mmap(4096)
        assert split.loader.half_of(addr) == "upper"
