"""Per-thread CUDA streams under CRAC (paper §6: "multi-threaded
programs on many-core CPUs, in which each thread employs a separate
CUDA stream")."""

import numpy as np
import pytest

from repro.core import CracSession
from repro.cuda.api import FatBinary

FB = FatBinary("mt.fatbin", ("worker",))
N_THREADS = 8


def make_session():
    session = CracSession(seed=91)
    session.backend.register_app_binary(FB)
    return session


def run_threaded_workload(session):
    """N host threads, each with its own stream, computing on its own
    device buffer — the paper's per-thread-stream pattern."""
    b = session.backend
    proc = session.process
    threads = [proc.spawn_thread() for _ in range(N_THREADS)]
    streams, buffers = [], []
    for i, t in enumerate(threads):
        with b.use_thread(t):
            streams.append(b.stream_create())
            buffers.append(b.malloc(4 * 64))
    for step in range(5):
        for i, t in enumerate(threads):
            with b.use_thread(t):
                def work(i=i, step=step):
                    v = b.device_view(buffers[i], 4 * 64, np.float32)
                    v[:] = np.float32(i * 100 + step)
                b.launch("worker", work, stream=streams[i],
                         duration_ns=50_000)
    b.device_synchronize()
    return threads, streams, buffers


class TestPerThreadStreams:
    def test_each_thread_gets_its_own_fs_switches(self):
        session = make_session()
        threads, streams, buffers = run_threaded_workload(session)
        # Every worker thread ended with the *upper-half* fs base — each
        # switched into the lower half and back through the trampoline.
        for t in threads:
            assert t.fs_base == session.backend._upper_fs

    def test_thread_context_is_restored(self):
        session = make_session()
        b = session.backend
        t = session.process.spawn_thread()
        with b.use_thread(t):
            assert b.current_thread is t
        assert b.current_thread is None

    def test_threaded_streams_overlap(self):
        session = make_session()
        t_start = session.process.clock_ns
        threads, streams, buffers = run_threaded_workload(session)
        # All per-thread streams ran concurrently: the wall span of the
        # workload is far below the serial sum of kernel durations.
        span = session.device.synchronize_all() - t_start
        total_kernel_ns = session.device.total_kernel_ns
        assert span < total_kernel_ns / 2

    def test_checkpoint_restart_with_per_thread_streams(self):
        session = make_session()
        threads, streams, buffers = run_threaded_workload(session)
        expect = [
            session.backend.device_view(p, 4 * 64, np.float32).copy()
            for p in buffers
        ]
        image = session.checkpoint()
        session.kill()
        report = session.restart(image)
        assert report.adopted_streams == N_THREADS
        for p, want in zip(buffers, expect):
            got = session.backend.device_view(p, 4 * 64, np.float32)
            np.testing.assert_array_equal(got, want)

    def test_spawn_thread_registers_with_process(self):
        session = make_session()
        n0 = len(session.process.threads)
        session.process.spawn_thread()
        assert len(session.process.threads) == n0 + 1
