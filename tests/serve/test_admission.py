"""Admission control: bounded queue, typed shedding, deadlines."""

import pytest

from repro.cuda.errors import CudaErrorCode
from repro.errors import (
    AdmissionRejectedError,
    ServeDeadlineExceededError,
    ServeError,
)
from repro.serve import AdmissionController


def test_admits_until_queue_full_then_rejects_typed():
    ac = AdmissionController(max_queue=3, deadline_ns=1e12)
    for i in range(3):
        ac.offer(f"s{i}")
    with pytest.raises(AdmissionRejectedError) as exc:
        ac.offer("s3")
    assert ac.rejected == 1
    assert ac.admitted == 3
    # The rejection rides the CUDA severity taxonomy: retryable, so a
    # client (or the ladder) knows backing off and re-offering is sound.
    assert exc.value.code is CudaErrorCode.SERVE_ADMISSION_REJECTED
    assert exc.value.retryable
    assert isinstance(exc.value, ServeError)


def test_release_frees_the_slot():
    ac = AdmissionController(max_queue=1, deadline_ns=1e12)
    ac.offer("a")
    with pytest.raises(AdmissionRejectedError):
        ac.offer("b")
    ac.release("a")
    assert ac.offer("b") >= 0.0
    ac.release("b")
    ac.release("b")  # idempotent


def test_duplicate_inflight_sid_is_rejected():
    ac = AdmissionController(max_queue=8)
    ac.offer("a")
    with pytest.raises(AdmissionRejectedError):
        ac.offer("a")


def test_deadline_miss_is_typed_and_deterministic():
    ac = AdmissionController(
        max_queue=100, deadline_ns=1e6, service_estimate_ns=1e6, servers=1
    )
    ac.offer("a")
    ac.offer("b")  # wait = 1e6 == deadline: still admitted
    with pytest.raises(ServeDeadlineExceededError) as exc:
        ac.offer("c")  # wait = 2e6 > deadline
    assert ac.deadline_missed == 1
    # Deterministic miss: no recovery rung can un-miss a deadline.
    assert exc.value.code is CudaErrorCode.SERVE_DEADLINE_EXCEEDED
    assert exc.value.severity == "program"
    assert exc.value.sid == "c"
    assert exc.value.waited_ns > exc.value.deadline_ns


def test_wait_estimate_scales_with_depth_and_servers():
    ac = AdmissionController(
        max_queue=100, deadline_ns=1e12,
        service_estimate_ns=100.0, servers=4,
    )
    waits = [ac.offer(f"s{i}") for i in range(8)]
    assert waits[0] == 0.0
    assert waits[3] == 0.0  # still within the 4 servers
    assert waits[4] == 100.0
    assert waits[7] == 100.0
    assert ac.estimate_wait_ns() == 200.0


def test_snapshot_counts():
    ac = AdmissionController(max_queue=1, deadline_ns=1e12)
    ac.offer("a")
    with pytest.raises(AdmissionRejectedError):
        ac.offer("b")
    snap = ac.snapshot()
    assert snap == {
        "offered": 2, "admitted": 1, "rejected": 1,
        "deadline_missed": 0, "depth": 1, "max_queue": 1,
    }
