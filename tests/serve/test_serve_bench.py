"""serve-bench harness: cells, totals, gate, baseline round-trip."""

import json

import pytest

from repro.harness.serve_bench import (
    _percentile,
    baseline_payload,
    evaluate_gate,
    format_serve_bench,
    run_serve_bench,
)
from repro.trace.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def tiny_report():
    # Smallest campaign that still exercises every cell's fault lever.
    return run_serve_bench(
        sessions=8, nodes=3, slots=2, waves=2, seed=0,
        state_elems=32, baseline=None,
    )


def test_percentile_nearest_rank():
    assert _percentile([], 0.99) == 0.0
    assert _percentile([5.0], 0.99) == 5.0
    xs = [float(i) for i in range(1, 101)]
    assert _percentile(xs, 0.50) == 51.0  # index round(0.5 * 99) = 50
    assert _percentile(xs, 0.99) == 99.0
    assert _percentile(xs, 1.00) == 100.0


def test_campaign_runs_every_cell_clean(tiny_report):
    r = tiny_report
    assert [c["cell"] for c in r["cells"]] == [
        "baseline", "ecc", "kernel-hang", "node-death", "eviction-storm",
    ]
    assert r["totals"]["lost_sessions"] == 0
    assert r["totals"]["digest_mismatches"] == 0
    assert r["checks"] == {
        "zero_lost": True, "digests_equal": True, "gate_ok": True,
    }
    assert r["ok"]
    # The chaos cells actually recovered through their intended rungs.
    by_cell = {c["cell"]: c for c in r["cells"]}
    assert by_cell["node-death"]["failovers"] > 0
    assert by_cell["eviction-storm"]["parks"] > by_cell["baseline"]["parks"]
    json.dumps(r)  # JSON-safe end to end


def test_virtual_time_report_is_deterministic(tiny_report):
    again = run_serve_bench(
        sessions=8, nodes=3, slots=2, waves=2, seed=0,
        state_elems=32, baseline=None,
    )
    for key in ("totals", "config"):
        a, b = dict(tiny_report[key]), dict(again[key])
        a.pop("wall_s", None), b.pop("wall_s", None)
        assert a == b


def test_gate_against_baseline_file(tiny_report, tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(baseline_payload(tiny_report)))
    gate = evaluate_gate(tiny_report, str(path))
    assert gate["baseline_found"]
    assert gate["resume_ratio"] == pytest.approx(1.0)
    assert gate["throughput_ratio"] == pytest.approx(1.0)
    assert gate["ok"]
    # A regressed run fails the gate.
    worse = json.loads(json.dumps(tiny_report))
    worse["totals"]["resume_p99_ms"] *= 2.0
    assert not evaluate_gate(worse, str(path))["ok"]


def test_missing_baseline_records_only(tiny_report):
    gate = evaluate_gate(tiny_report, "benchmarks/definitely-missing.json")
    assert not gate["baseline_found"]
    assert gate["ok"]


def test_format_is_human_readable(tiny_report):
    text = format_serve_bench(tiny_report)
    assert "node-death" in text
    assert "result: OK" in text


def test_metrics_merge_matches_shared_registry():
    # Per-cell registries merged == one registry fed everything.
    shared, a, b = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    for reg in (shared, a):
        reg.counter("c").inc(3)
        reg.histogram("h").record(10.0)
        reg.histogram("h").record(300.0)
    for reg in (shared, b):
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").record(0.5)
    a.merge(b)
    assert a.snapshot() == shared.snapshot()
