"""Property test: no evict/rehydrate/fault schedule changes a digest.

Hypothesis drives a random interleaving of requests, forced parks,
node deaths, and injected runtime faults over a small session
population. Whatever the schedule, every session that closes must be
digest-equal to the pure-numpy reference replay of exactly the requests
it served — the same state a never-evicted, never-faulted run would
hold. This is the serving tier's transparency claim in its strongest
form: checkpoint-backed eviction and the recovery ladder are invisible
to session state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.fault_injection import FaultSpec
from repro.serve import SessionPool, ServeScheduler

N = 32
SIDS = ("p0", "p1", "p2")

step_strategy = st.lists(
    st.one_of(
        # serve one request to a random session
        st.tuples(st.just("request"), st.integers(0, len(SIDS) - 1)),
        # force-park a random session (no-op if not hot)
        st.tuples(st.just("park"), st.integers(0, len(SIDS) - 1)),
        # kill a node (at most one death; the pool needs 2 alive to
        # place, so the 3-node pool tolerates exactly one)
        st.tuples(st.just("node-death"), st.just(0)),
    ),
    min_size=2,
    max_size=14,
)

fault_strategy = st.sampled_from([
    (),
    (FaultSpec("ecc", probability=0.05, max_fires=1),),
    (FaultSpec("kernel-hang", probability=0.05, max_fires=1),),
])


@settings(max_examples=12, deadline=None)
@given(steps=step_strategy, faults=fault_strategy, seed=st.integers(0, 2**16))
def test_any_schedule_is_digest_equal(steps, faults, seed):
    pool = SessionPool(3, slots=2, seed=seed)
    sched = ServeScheduler(
        pool, seed=seed, state_elems=N, fault_plan=list(faults)
    )
    for sid in SIDS:
        sched.open_session(sid)
    killed = False
    for kind, arg in steps:
        if kind == "request":
            sched.handle_request(SIDS[arg])
        elif kind == "park":
            rec = sched.records[SIDS[arg]]
            if rec.state == "hot":
                sched._park(rec)
        elif kind == "node-death" and not killed:
            # Kill the busiest node so the death actually moves state.
            victim = max(
                pool.alive_nodes(), key=lambda n: (len(n.hot), n.name)
            )
            pool.fail(victim.name)
            sched.sweep()
            killed = True
    results = [sched.close_session(sid) for sid in SIDS]
    assert all(not r["lost"] for r in results), results
    assert all(r["ok"] for r in results), results
