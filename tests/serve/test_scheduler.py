"""The serving tier end to end: park/rehydrate, chaos, node death."""

import numpy as np

from repro.apps.base import digest_arrays
from repro.errors import SessionEvictedError
from repro.harness.fault_injection import FaultSpec
from repro.serve import SessionPool, ServeScheduler
from repro.serve.scheduler import reference_digest

N = 32


def make_tier(n_nodes=2, slots=2, seed=3, **kwargs):
    pool = SessionPool(n_nodes, slots=slots, seed=seed)
    return pool, ServeScheduler(pool, seed=seed, state_elems=N, **kwargs)


def close_all(sched, sids):
    results = [sched.close_session(sid) for sid in sids]
    assert all(not r["lost"] for r in results), results
    assert all(r["ok"] for r in results), results
    return results


class TestEvictionRehydration:
    def test_park_rehydrate_is_digest_equal(self):
        # 5 sessions over 4 slots: every wave churns someone through
        # park + rehydrate, and every digest must still match the
        # pure-numpy replay of exactly the requests that session served.
        pool, sched = make_tier()
        sids = [f"s{i}" for i in range(5)]
        for sid in sids:
            sched.open_session(sid)
        for _ in range(3):
            for sid in sids:
                sched.handle_request(sid)
        results = close_all(sched, sids)
        assert sum(r["parks"] for r in results) > 0
        assert sum(r["rehydrates"] for r in results) > 0

    def test_parked_session_holds_no_gpu_slot(self):
        pool, sched = make_tier()
        for i in range(5):
            sched.open_session(f"s{i}")
        for node in pool.nodes:
            assert len(node.hot) <= node.slots
        states = sched.states()
        assert states["hot"] == 4
        assert states["parked"] == 1

    def test_parks_are_incremental_after_the_anchor(self):
        pool, sched = make_tier(slots=1)
        sched.open_session("a")
        sched.handle_request("a")
        sched.open_session("b")  # lands on the other 1-slot node
        # "c" fills the pool past capacity and parks "a": the park rides
        # the anchor generation as an incremental delta.
        sched.open_session("c")
        rec = sched.records["a"]
        assert rec.state == "parked"
        latest = rec.store.get(rec.store.latest())
        assert latest.image.parent is not None

    def test_every_session_has_an_off_node_shadow(self):
        pool, sched = make_tier()
        sched.open_session("a")
        home = sched.records["a"].node
        shadow = pool.shadow_home("a")
        assert shadow is not None and shadow is not home


class TestChaosWhileServing:
    def test_ecc_storm_stays_digest_equal(self):
        plan = [FaultSpec("ecc", probability=0.10, max_fires=2)]
        pool, sched = make_tier(seed=17, fault_plan=plan)
        sids = [f"e{i}" for i in range(5)]
        for sid in sids:
            sched.open_session(sid)
        for _ in range(4):
            for sid in sids:
                sched.handle_request(sid)
        close_all(sched, sids)
        counters = sched.metrics.snapshot()["counters"]
        assert counters.get("serve.recovery.restore", 0) > 0

    def test_kernel_hang_stays_digest_equal(self):
        plan = [FaultSpec("kernel-hang", probability=0.10, max_fires=2)]
        pool, sched = make_tier(seed=23, fault_plan=plan)
        sids = [f"k{i}" for i in range(5)]
        for sid in sids:
            sched.open_session(sid)
        for _ in range(4):
            for sid in sids:
                sched.handle_request(sid)
        close_all(sched, sids)
        counters = sched.metrics.snapshot()["counters"]
        assert counters.get("serve.recovery.stream-reset", 0) > 0

    def test_recovery_budget_quarantines_not_crashes(self):
        # Budget 0: the first recovered fault tips the session into
        # quarantine. Further requests shed typed; close still verifies.
        plan = [FaultSpec("ecc", at_count=2, max_fires=1)]
        pool, sched = make_tier(seed=29, fault_plan=plan,
                                recovery_budget=0)
        sched.open_session("q")
        sched.open_session("other")
        served = 0
        quarantined_at = None
        for r in range(6):
            try:
                sched.handle_request("q")
                served += 1
            except SessionEvictedError as exc:
                assert exc.sid == "q"
                quarantined_at = r
                break
        assert quarantined_at is not None
        assert sched.records["q"].state == "quarantined"
        counters = sched.metrics.snapshot()["counters"]
        assert counters.get("serve.quarantined", 0) == 1
        assert counters.get("serve.requests.shed_quarantined", 0) >= 0
        # The quarantined session is still restorable and digest-equal.
        result = sched.close_session("q")
        assert result["ok"] and not result["lost"]
        assert result["requests"] == served


class TestNodeDeath:
    def test_hot_sessions_fail_over_digest_equal(self):
        pool, sched = make_tier(n_nodes=3, slots=3, seed=31)
        sids = [f"n{i}" for i in range(6)]
        for sid in sids:
            sched.open_session(sid)
        for sid in sids:
            sched.handle_request(sid)
        victim = sched.records[sids[0]].node
        moved = sorted(victim.hot)
        pool.fail(victim.name)
        assert sched.sweep() == [victim.name]
        assert sched.sweep() == []  # idempotent
        for sid in moved:
            rec = sched.records[sid]
            assert rec.node is not victim and rec.node.alive
            assert rec.failovers == 1
        # The survivors keep serving; everyone closes digest-equal.
        for sid in sids:
            sched.handle_request(sid)
        results = close_all(sched, sids)
        assert sum(r["failovers"] for r in results) == len(moved)

    def test_failover_charges_detection_latency(self):
        pool, sched = make_tier(
            n_nodes=3, slots=3, seed=37,
            heartbeat_interval_s=0.5, max_missed=3,
        )
        sched.open_session("a")
        sched.handle_request("a")
        pool.fail(sched.records["a"].node.name)
        sched.sweep()
        # 3 missed 0.5 s heartbeats = 1.5 s of virtual detection time,
        # charged into the failover resume latency.
        assert sched.resume_ns[-1] >= 1.5e9

    def test_parked_sessions_rehome_without_restore(self):
        pool, sched = make_tier(n_nodes=3, slots=1, seed=41)
        for sid in ("a", "b", "c"):
            sched.open_session(sid)
        sched.handle_request("a")
        # "d" overfills the pool; the LRU victim ("b") parks on its home.
        sched.open_session("d")
        parked = [
            s for s, r in sched.records.items() if r.state == "parked"
        ]
        assert len(parked) == 1
        rec = sched.records[parked[0]]
        home, restarts_before = rec.node, rec.rehydrates
        pool.fail(home.name)
        sched.sweep()
        assert rec.node is not home and rec.node.alive
        assert rec.rehydrates == restarts_before  # images moved, no restore
        assert sched.handle_request(rec.sid)["sid"] == rec.sid
        close_all(sched, ["a", "b", "c", "d"])


class TestReferenceDigest:
    def test_reference_matches_unfaulted_serving(self):
        pool, sched = make_tier(slots=3, seed=43)
        sched.open_session("r")
        for _ in range(3):
            sched.handle_request("r")
        rec = sched.records["r"]
        view = rec.session.backend.device_view(
            rec.addr, rec.nbytes, np.float32
        )
        assert digest_arrays(view) == reference_digest(
            43, "r", N, [0, 1, 2]
        )

    def test_reference_is_order_sensitive(self):
        assert reference_digest(0, "s", N, [0, 1]) != reference_digest(
            0, "s", N, [1, 0]
        )
        assert reference_digest(0, "s", N, [0]) != reference_digest(
            0, "s", N, [0, 0]
        )
