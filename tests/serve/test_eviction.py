"""LRU hot-set bookkeeping: recency order, filtered victim choice."""

from repro.serve import LruHotSet


def test_touch_moves_to_most_recent():
    hot = LruHotSet()
    for sid in ("a", "b", "c"):
        hot.touch(sid)
    assert hot.members() == ["a", "b", "c"]
    hot.touch("a")
    assert hot.members() == ["b", "c", "a"]
    assert hot.lru() == "b"


def test_lru_with_predicate_picks_first_match():
    hot = LruHotSet()
    for sid in ("a", "b", "c", "d"):
        hot.touch(sid)
    node_members = {"b", "d"}
    assert hot.lru(lambda s: s in node_members) == "b"
    hot.touch("b")
    assert hot.lru(lambda s: s in node_members) == "d"


def test_discard_and_empty():
    hot = LruHotSet()
    hot.touch("a")
    hot.discard("a")
    hot.discard("a")  # idempotent
    assert len(hot) == 0
    assert hot.lru() is None
    assert "a" not in hot


def test_iteration_is_lru_first():
    hot = LruHotSet()
    for sid in ("x", "y", "z"):
        hot.touch(sid)
    hot.touch("x")
    assert list(hot) == ["y", "z", "x"]
