"""Algorithmic correctness of the Rodinia miniatures.

Each app's kernels implement a real algorithm on real data; these tests
cross-check outputs against independent references (networkx for graph
traversal, dense numpy recomputation for stencils/DP/linear algebra).

For fully-real apps (BFS, Particlefilter) the whole run is verified; for
fast-forwarded apps the verified portion is the measured iterations
(content-wise the run *is* those iterations — fast-forward repeats
steady state).
"""

import networkx as nx
import numpy as np
import pytest

from repro.apps.base import AppContext
from repro.apps.rodinia import (
    Bfs,
    Cfd,
    Gaussian,
    Hotspot,
    Kmeans,
    Nw,
    Particlefilter,
    Srad,
)
from repro.core.halves import SplitProcess
from repro.cuda.interface import NativeBackend


def run_and_capture(app):
    split = SplitProcess(seed=42)
    backend = NativeBackend(split.runtime)
    ctx = AppContext(backend=backend, upper_mmap=split.upper_mmap)
    app.run(ctx)
    return app.outputs


class TestBfsAgainstNetworkx:
    def test_levels_match_shortest_paths(self):
        app = Bfs(scale=1.0, seed=3)
        out = run_and_capture(app)
        # Rebuild the same graph the app built (same seed, same draws).
        ref_app = Bfs(scale=1.0, seed=3)
        deg = ref_app.rng.poisson(ref_app.AVG_DEG, ref_app.N_NODES).astype(
            np.int32
        ) + 1
        row_ptr = np.zeros(ref_app.N_NODES + 1, dtype=np.int32)
        np.cumsum(deg, out=row_ptr[1:])
        col_idx = ref_app.rng.integers(
            0, ref_app.N_NODES, int(row_ptr[-1])
        ).astype(np.int32)
        g = nx.DiGraph()
        g.add_nodes_from(range(ref_app.N_NODES))
        for u in range(ref_app.N_NODES):
            for v in col_idx[row_ptr[u] : row_ptr[u + 1]]:
                g.add_edge(u, int(v))
        ref_levels = nx.single_source_shortest_path_length(g, 0)
        for node, lvl in ref_levels.items():
            if lvl <= app.PAPER_ITERS:  # within the executed levels
                assert out["levels"][node] == lvl, node
        unreachable = set(range(ref_app.N_NODES)) - set(ref_levels)
        for node in unreachable:
            assert out["levels"][node] == -1


class TestHotspotAgainstDenseReference:
    def test_executed_iterations_match_numpy(self):
        app = Hotspot(scale=0.002, seed=7)  # 4 iterations, fully real
        out = run_and_capture(app)

        ref_app = Hotspot(scale=0.002, seed=7)
        s = ref_app.SIDE
        temp = (300.0 + ref_app.rng.random((s, s)) * 40.0).astype(np.float32)
        power = (ref_app.rng.random((s, s)) * 2.0).astype(np.float32)
        iters = ref_app.iterations(ref_app.PAPER_ITERS)
        executed = min(iters, ref_app.MEASURE)
        for _ in range(executed):
            lap = np.zeros_like(temp)
            lap[1:-1, 1:-1] = (
                temp[:-2, 1:-1] + temp[2:, 1:-1]
                + temp[1:-1, :-2] + temp[1:-1, 2:]
                - 4.0 * temp[1:-1, 1:-1]
            )
            temp += ref_app.K * (lap + power)
        np.testing.assert_array_equal(out["temp"], temp)


class TestNwAgainstReferenceDp:
    def test_swept_cells_match_dp(self):
        app = Nw(scale=0.002, seed=9)
        out = run_and_capture(app)

        ref = Nw(scale=0.002, seed=9)
        n = ref.N
        refmat = ref.rng.integers(-5, 5, (n, n)).astype(np.int32)
        score = np.zeros((n, n), dtype=np.int32)
        score[0, :] = -ref.PENALTY * np.arange(n)
        score[:, 0] = -ref.PENALTY * np.arange(n)
        iters = ref.iterations(ref.PAPER_ITERS)
        executed = min(iters, ref.MEASURE)
        for i in range(executed):
            diag = (i % (2 * n - 3)) + 1
            for ii in range(max(1, diag - n + 2), min(diag, n - 1) + 1):
                jj = diag - ii + 1
                if 1 <= jj < n:
                    score[ii, jj] = max(
                        score[ii - 1, jj] - ref.PENALTY,
                        score[ii, jj - 1] - ref.PENALTY,
                        score[ii - 1, jj - 1] + refmat[ii, jj],
                    )
        np.testing.assert_array_equal(out["score"], score)


class TestGaussianElimination:
    def test_eliminated_columns_are_zeroed(self):
        app = Gaussian(scale=0.002, seed=11)  # 4 real row eliminations
        out = run_and_capture(app)
        a = out["a"]
        executed = min(app.iterations(app.PAPER_ITERS), app.MEASURE)
        for row in range(executed):
            np.testing.assert_allclose(
                a[row + 1 :, row], 0.0, atol=1e-3,
                err_msg=f"column {row} not eliminated",
            )

    def test_pivot_rows_untouched(self):
        app = Gaussian(scale=0.002, seed=11)
        out = run_and_capture(app)
        assert np.isfinite(out["a"]).all()
        assert np.isfinite(out["rhs"]).all()


class TestKmeansInvariants:
    def test_lloyd_iterations_match_reference(self):
        """Replicate the executed Lloyd iterations exactly (assign with
        the *pre-update* centers, then recompute centers)."""
        app = Kmeans(scale=0.002, seed=13)
        out = run_and_capture(app)
        ref = Kmeans(scale=0.002, seed=13)
        pts = ref.rng.standard_normal((ref.N_POINTS, ref.N_DIMS)).astype(
            np.float32
        )
        centers = pts[: ref.N_CLUSTERS].copy()
        executed = min(ref.iterations(ref.PAPER_ITERS), ref.MEASURE)
        member = np.zeros(ref.N_POINTS, dtype=np.int32)
        for _ in range(executed):
            d2 = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            member = np.argmin(d2, axis=1).astype(np.int32)
            for c in range(ref.N_CLUSTERS):
                mask = member == c
                if mask.any():
                    centers[c] = pts[mask].mean(axis=0)
        np.testing.assert_array_equal(out["member"], member)
        np.testing.assert_allclose(out["centers"], centers, rtol=1e-5)

    def test_centers_are_means_of_members(self):
        app = Kmeans(scale=0.002, seed=13)
        out = run_and_capture(app)
        ref = Kmeans(scale=0.002, seed=13)
        pts = ref.rng.standard_normal((ref.N_POINTS, ref.N_DIMS)).astype(
            np.float32
        )
        for c in range(ref.N_CLUSTERS):
            mask = out["member"] == c
            if mask.any():
                np.testing.assert_allclose(
                    out["centers"][c], pts[mask].mean(axis=0), rtol=1e-4
                )


class TestParticlefilterTracking:
    def test_particles_converge_to_true_path(self):
        app = Particlefilter(scale=1.0, seed=17)  # 10 frames, fully real
        out = run_and_capture(app)
        truth = app.true_path[-1]
        est = out["particles"].mean(axis=0)
        # A 100-particle filter over a unit-step random walk tracks to
        # within a couple of steps.
        assert np.linalg.norm(est - truth) < 2.5


class TestSradStability:
    def test_image_stays_positive_and_finite(self):
        app = Srad(scale=0.005, seed=19)
        out = run_and_capture(app)
        assert np.isfinite(out["image"]).all()
        assert (out["image"] > 0).all()  # diffusion preserves positivity


class TestCfdConservation:
    def test_density_positive_and_mass_conserved(self):
        app = Cfd(scale=0.002, seed=21)
        out = run_and_capture(app)
        rho = out["rho"]
        assert (rho > 0).all()
        # Interior updates are conservative (flux-form); boundary cells
        # are frozen, so total interior mass moves only through the two
        # boundary fluxes — over 4 steps the drift is tiny.
        ref = Cfd(scale=0.002, seed=21)
        rho0 = np.where(np.arange(ref.N) < ref.N // 2, 1.0, 0.125)
        rho0 += ref.rng.uniform(0, 1e-3, ref.N)
        assert abs(rho.sum() - rho0.sum()) < 0.05 * rho0.sum()
