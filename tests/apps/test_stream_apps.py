"""Tests for the stream-oriented and real-world apps."""

import pytest

from repro.apps import (
    CublasMicro,
    Hpgmg,
    Hypre,
    Lulesh,
    SimpleStreams,
    UnifiedMemoryStreams,
)
from repro.harness import run_app

SCALE = 0.01
ALL_APPS = [SimpleStreams, UnifiedMemoryStreams, Lulesh, Hpgmg, Hypre]


@pytest.fixture(params=ALL_APPS, ids=lambda c: c.__name__)
def app_cls(request):
    return request.param


class TestEveryApp:
    def test_crac_output_equals_native(self, app_cls):
        n = run_app(app_cls(scale=SCALE), mode="native", noise=False)
        c = run_app(app_cls(scale=SCALE), mode="crac", noise=False)
        assert n.digest == c.digest

    def test_checkpoint_restart_transparent(self, app_cls):
        n = run_app(app_cls(scale=SCALE), mode="native", noise=False)
        c = run_app(
            app_cls(scale=SCALE), mode="crac", checkpoint_at=0.3, noise=False
        )
        assert c.digest == n.digest
        assert len(c.checkpoints) == 1


class TestSimpleStreams:
    def test_kernel_time_grows_with_iterations(self):
        r5 = run_app(SimpleStreams(scale=SCALE, niterations=5), noise=False)
        r500 = run_app(SimpleStreams(scale=SCALE, niterations=500), noise=False)
        assert (
            r500.extras["kernel_ms"]["non_streamed"]
            > 10 * r5.extras["kernel_ms"]["non_streamed"]
        )

    def test_streamed_kernel_much_faster_than_non_streamed(self):
        """Figure 4b: the per-chunk streamed kernel is ~1/n of the
        whole-array kernel."""
        r = run_app(SimpleStreams(scale=SCALE, niterations=500), noise=False)
        km = r.extras["kernel_ms"]
        assert km["streamed"] < km["non_streamed"] / 32

    def test_uses_maximum_stream_count(self):
        app = SimpleStreams(scale=SCALE)
        assert app.nstreams == 128  # CC 7.0 concurrent-kernel limit

    def test_streaming_reduces_total_time_vs_serial(self):
        """The streamed phase hides kernels under copies: total runtime
        is less than 2× the non-streamed phase alone would suggest."""
        r = run_app(SimpleStreams(scale=0.02, niterations=500), noise=False)
        assert r.runtime_exact_s > 0


class TestUnifiedMemoryStreams:
    def test_paper_seed_default(self):
        assert UnifiedMemoryStreams().seed == 12701

    def test_mix_of_host_and_device_tasks(self):
        res = run_app(UnifiedMemoryStreams(scale=0.05), mode="native", noise=False)
        # Device tasks launch kernels; host tasks don't — both must exist.
        assert res.cuda_calls > 0
        assert res.extras == {} or True

    def test_uses_uvm(self):
        assert UnifiedMemoryStreams.uses_uvm
        assert UnifiedMemoryStreams.uses_streams


class TestRealWorld:
    def test_hpgmg_profile(self):
        res = run_app(Hpgmg(scale=0.002), mode="native", noise=False)
        # HPGMG's signature: very high CPS (§4.4.3: ~35K calls/second).
        assert res.cps > 10_000

    def test_hypre_profile(self):
        res = run_app(Hypre(scale=0.02), mode="native", noise=False)
        # HYPRE's signature: very low CPS (~600/s) with long kernels.
        assert res.cps < 5_000

    def test_lulesh_uses_streams(self):
        assert Lulesh.uses_streams
        assert Lulesh.stream_range == "2–32"

    def test_hpgmg_long_malloc_log(self):
        """HPGMG's restart is replay-dominated (Figure 5c)."""
        res = run_app(
            Hpgmg(scale=0.02), mode="crac", checkpoint_at=0.5, noise=False
        )
        (rec,) = res.checkpoints
        assert rec.replayed_calls > 200
        assert rec.restart_s > rec.checkpoint_s


class TestCublasMicro:
    def test_routines(self):
        for routine in ("sdot", "sgemv", "sgemm"):
            res = run_app(
                CublasMicro(scale=0.005, routine=routine, data_mb=1),
                mode="native", noise=False,
            )
            assert res.extras["ms_per_call"] > 0

    def test_unknown_routine_rejected(self):
        with pytest.raises(ValueError):
            CublasMicro(routine="saxpy")

    def test_ms_per_call_grows_with_size_for_sgemm(self):
        small = run_app(
            CublasMicro(scale=0.005, routine="sgemm", data_mb=1), noise=False
        )
        big = run_app(
            CublasMicro(scale=0.005, routine="sgemm", data_mb=100), noise=False
        )
        assert big.extras["ms_per_call"] > 50 * small.extras["ms_per_call"]

    def test_proxy_much_slower_per_call(self):
        native = run_app(
            CublasMicro(scale=0.005, routine="sdot", data_mb=10), noise=False
        )
        proxy = run_app(
            CublasMicro(scale=0.005, routine="sdot", data_mb=10),
            mode="proxy-cma", noise=False,
        )
        assert proxy.extras["ms_per_call"] > 10 * native.extras["ms_per_call"]
