"""Tests for the app framework: context, TimedLoop fast-forwarding."""

from collections import Counter

import pytest

from repro.apps.base import AppContext, CudaApp, TimedLoop, digest_arrays
from repro.core.halves import SplitProcess
from repro.cuda.interface import NativeBackend

import numpy as np


def make_ctx(**kw):
    split = SplitProcess(seed=21)
    backend = NativeBackend(split.runtime)
    return AppContext(backend=backend, upper_mmap=split.upper_mmap, **kw), split


class TestTimedLoop:
    def test_small_loop_runs_fully_real(self):
        ctx, _ = make_ctx()
        ran = []
        loop = TimedLoop(ctx, total=3, measure=10)
        for i in loop:
            ran.append(i)
        assert ran == [0, 1, 2]
        assert loop.executed == 3

    def test_fast_forward_advances_clock(self):
        ctx, _ = make_ctx()
        proc = ctx.backend.process

        loop = TimedLoop(ctx, total=1000, measure=4)
        for i in loop:
            proc.advance(1_000_000)  # 1 ms of "work" per iteration
        # 4 real + 996 extrapolated at ~1 ms each (+ sync costs).
        assert proc.clock_ns >= 990 * 1_000_000
        assert loop.executed == 4

    def test_fast_forward_extrapolates_calls(self):
        ctx, _ = make_ctx()
        b = ctx.backend
        from repro.cuda.api import FatBinary

        b.register_app_binary(FatBinary("t.fatbin", ("k",)))
        loop = TimedLoop(ctx, total=100, measure=4)
        for i in loop:
            b.launch("k")
        # ~3 calls per launch + 1 sync per measured iteration, ×100.
        assert b.call_counter["cudaLaunchKernel"] == 100

    def test_checkpoint_hook_fires_during_measured_and_at_end(self):
        fired = []
        ctx, _ = make_ctx(checkpoint_cb=lambda p: fired.append(p))
        for i in TimedLoop(ctx, total=50, measure=2):
            pass
        assert fired[0] == pytest.approx(1 / 50)
        assert fired[-1] == 1.0

    def test_no_fast_forward_when_total_equals_measure(self):
        ctx, _ = make_ctx()
        proc = ctx.backend.process
        before_calls = ctx.backend.total_calls
        for i in TimedLoop(ctx, total=2, measure=2):
            pass
        # only the 2 per-iteration syncs counted
        assert ctx.backend.total_calls - before_calls == 2


class TestCudaApp:
    def test_scale_validation(self):
        class A(CudaApp):
            pass

        with pytest.raises(ValueError):
            A(scale=0.0)
        with pytest.raises(ValueError):
            A(scale=1.5)

    def test_iterations_scaling(self):
        class A(CudaApp):
            pass

        assert A(scale=1.0).iterations(100) == 100
        assert A(scale=0.1).iterations(100) == 10
        assert A(scale=0.001).iterations(100) == 1  # floor

    def test_kernel_budget_fills_target(self):
        class A(CudaApp):
            target_runtime_s = 10.0

        a = A(scale=1.0)
        per_kernel = a.kernel_budget_ns(1000, fraction=0.9)
        assert per_kernel * 1000 == pytest.approx(9.0e9)

    def test_digest_arrays_order_sensitivity(self):
        a = np.arange(10)
        b = np.arange(10)[::-1].copy()
        assert digest_arrays(a) != digest_arrays(b)
        assert digest_arrays(a, b) == digest_arrays(a, b)
