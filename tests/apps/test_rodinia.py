"""Tests for the 14 Rodinia miniatures: determinism, mode equivalence,
checkpoint-restart transparency, calibration."""

import pytest

from repro.apps.rodinia import RODINIA_SUITE
from repro.harness import Machine, run_app

SCALE = 0.01


@pytest.fixture(params=RODINIA_SUITE, ids=lambda c: c.name)
def app_cls(request):
    return request.param


class TestEveryRodiniaApp:
    def test_runs_native(self, app_cls):
        res = run_app(app_cls(scale=SCALE), mode="native", noise=False)
        assert res.runtime_exact_s > 0
        assert res.cuda_calls > 0

    def test_digest_deterministic(self, app_cls):
        r1 = run_app(app_cls(scale=SCALE, seed=5), mode="native", noise=False)
        r2 = run_app(app_cls(scale=SCALE, seed=5), mode="native", noise=False)
        assert r1.digest == r2.digest

    def test_seed_changes_digest(self, app_cls):
        r1 = run_app(app_cls(scale=SCALE, seed=1), mode="native", noise=False)
        r2 = run_app(app_cls(scale=SCALE, seed=2), mode="native", noise=False)
        assert r1.digest != r2.digest

    def test_crac_output_equals_native(self, app_cls):
        n = run_app(app_cls(scale=SCALE), mode="native", noise=False)
        c = run_app(app_cls(scale=SCALE), mode="crac", noise=False)
        assert n.digest == c.digest

    def test_checkpoint_restart_transparent(self, app_cls):
        """Mid-run checkpoint + kill + restart must not change output."""
        n = run_app(app_cls(scale=SCALE), mode="native", noise=False)
        c = run_app(
            app_cls(scale=SCALE), mode="crac", checkpoint_at=0.3, noise=False
        )
        assert c.digest == n.digest
        (rec,) = c.checkpoints
        assert rec.checkpoint_s > 0
        assert rec.restart_s > 0

    def test_crac_overhead_positive_in_exact_time(self, app_cls):
        n = run_app(app_cls(scale=SCALE), mode="native", noise=False)
        c = run_app(app_cls(scale=SCALE), mode="crac", noise=False)
        assert c.runtime_exact_s > n.runtime_exact_s

    def test_metadata(self, app_cls):
        app = app_cls(scale=SCALE)
        assert app.cli_args  # Table 2 entry
        names = app.kernel_names()
        assert len(set(names)) == len(names)


class TestCalibration:
    """Paper-scale (scale=1.0) targets from Figure 2 / Table 1."""

    @pytest.mark.parametrize("app_cls", RODINIA_SUITE, ids=lambda c: c.name)
    def test_call_count_near_target(self, app_cls):
        res = run_app(app_cls(scale=1.0), mode="native", noise=False)
        assert res.cuda_calls == pytest.approx(app_cls.target_calls, rel=0.25)

    @pytest.mark.parametrize("app_cls", RODINIA_SUITE, ids=lambda c: c.name)
    def test_runtime_near_target(self, app_cls):
        res = run_app(app_cls(scale=1.0), mode="native", noise=False)
        assert res.runtime_exact_s == pytest.approx(
            app_cls.target_runtime_s, rel=0.25
        )

    def test_suite_covers_paper_figure2_grouping(self):
        """9 of 14 run under 7 s natively; the rest over 10 s (§4.4.1)."""
        short, long_ = 0, 0
        for cls in RODINIA_SUITE:
            t = cls.target_runtime_s
            if t < 7:
                short += 1
            elif t > 10:
                long_ += 1
        assert short == 9
        assert long_ == 5
