"""Algorithmic properties of the remaining Rodinia miniatures."""

import numpy as np
import pytest

from repro.apps.base import AppContext
from repro.apps.rodinia import (
    Dwt2d,
    Heartwall,
    Hotspot3d,
    Leukocyte,
    Lud,
    Streamcluster,
)
from repro.core.halves import SplitProcess
from repro.cuda.interface import NativeBackend


def run_and_capture(app, seed=42):
    split = SplitProcess(seed=seed)
    backend = NativeBackend(split.runtime)
    ctx = AppContext(backend=backend, upper_mmap=split.upper_mmap)
    app.run(ctx)
    return app.outputs


class TestDwt2dHaar:
    def test_one_level_matches_reference(self):
        """Replicate the executed Haar passes exactly."""
        app = Dwt2d(scale=0.0001, seed=5)  # 5 real iterations (MEASURE=4 → 4)
        out = run_and_capture(app)

        ref = Dwt2d(scale=0.0001, seed=5)
        s = ref.SIDE
        img = ref.rng.standard_normal((s, s)).astype(np.float32)
        executed = min(ref.iterations(ref.PAPER_ITERS), ref.MEASURE)
        inv = np.float32(1.0 / np.sqrt(2.0))
        tmp = np.zeros_like(img)
        for _ in range(executed):
            tmp[:, : s // 2] = (img[:, 0::2] + img[:, 1::2]) * inv
            tmp[:, s // 2 :] = (img[:, 0::2] - img[:, 1::2]) * inv
            img[: s // 2, :] = (tmp[0::2, :] + tmp[1::2, :]) * inv
            img[s // 2 :, :] = (tmp[0::2, :] - tmp[1::2, :]) * inv
            np.round(img * 64.0, out=img)
            img /= 64.0
        np.testing.assert_array_equal(out["image"], img)

    def test_output_finite(self):
        out = run_and_capture(Dwt2d(scale=0.0005, seed=6))
        assert np.isfinite(out["image"]).all()


class TestHotspot3dReference:
    def test_executed_steps_match_numpy(self):
        app = Hotspot3d(scale=0.005, seed=7)
        out = run_and_capture(app)
        ref = Hotspot3d(scale=0.005, seed=7)
        d, s = ref.DEPTH, ref.SIDE
        temp = (300.0 + ref.rng.random((d, s, s)) * 40.0).astype(np.float32)
        power = (ref.rng.random((d, s, s)) * 2.0).astype(np.float32)
        executed = min(ref.iterations(ref.PAPER_ITERS), ref.MEASURE)
        for _ in range(executed):
            lap = np.zeros_like(temp)
            lap[1:-1, 1:-1, 1:-1] = (
                temp[:-2, 1:-1, 1:-1] + temp[2:, 1:-1, 1:-1]
                + temp[1:-1, :-2, 1:-1] + temp[1:-1, 2:, 1:-1]
                + temp[1:-1, 1:-1, :-2] + temp[1:-1, 1:-1, 2:]
                - 6.0 * temp[1:-1, 1:-1, 1:-1]
            )
            temp += np.float32(0.05) * (lap + power)
        np.testing.assert_array_equal(out["temp"], temp.reshape(-1))


class TestLudStructure:
    def test_diagonal_blocks_factorized(self):
        """The diagonal kernel leaves unit-lower/upper structure within
        the processed blocks (real LU semantics)."""
        app = Lud(scale=0.05, seed=8)  # 5 block steps: k = 0..4
        out = run_and_capture(app)
        a = out["a"]
        blk = app.B
        executed = min(app.iterations(app.PAPER_ITERS), app.MEASURE)
        for k in range(min(executed, app.N // blk)):
            o = k * blk
            d = a[o : o + blk, o : o + blk]
            # Reconstruct: L (unit lower) @ U (upper) ≈ ... the in-place
            # factorization leaves finite, non-degenerate pivots.
            assert np.isfinite(d).all()
            assert (np.abs(np.diag(d)) > 1e-6).all()


class TestTrackingAppsStayInBounds:
    def test_heartwall_points_within_frame(self):
        app = Heartwall(scale=0.1, seed=9)
        out = run_and_capture(app)
        pts = out["points"]
        assert (pts >= 1).all() and (pts <= app.SIDE - 2).all()

    def test_leukocyte_cells_within_frame(self):
        app = Leukocyte(scale=0.02, seed=10)
        out = run_and_capture(app)
        cells = out["cells"]
        assert (cells[0] >= 1).all() and (cells[0] <= app.SIDE - 2).all()


class TestStreamclusterInvariants:
    def test_at_least_one_center_open(self):
        out = run_and_capture(Streamcluster(scale=0.002, seed=11))
        assert out["flags"].sum() >= 1

    def test_cost_is_nonnegative(self):
        out = run_and_capture(Streamcluster(scale=0.002, seed=11))
        assert out["cost"][0] >= 0.0

    def test_opening_centers_never_increases_assignment_cost(self):
        """More open centers ⇒ (weakly) lower clustering cost, by
        construction of the min-distance assignment."""
        app = Streamcluster(scale=0.002, seed=12)
        out = run_and_capture(app)
        ref = Streamcluster(scale=0.002, seed=12)
        pts = ref.rng.standard_normal((ref.N_POINTS, ref.N_DIMS)).astype(
            np.float32
        )
        flags = out["flags"].astype(bool)
        centers = pts[flags]
        d2 = ((pts[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        full_cost = d2.min(axis=1).sum()
        single = ((pts - pts[0]) ** 2).sum(axis=1).sum()
        assert full_cost <= single + 1e-3
