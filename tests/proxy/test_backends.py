"""Tests for the proxy baselines: cost structure and failure modes."""

import numpy as np
import pytest

from repro.errors import CudaError, UnsupportedFeatureError
from repro.cuda.api import FatBinary, ManagedUse
from repro.cuda.cublas import CuBlas
from repro.cuda.interface import NativeBackend
from repro.gpu.uvm import UVM_PAGE
from repro.proxy import CheCudaCheckpointer, CrcudaBackend, CrumBackend, NaiveProxyBackend

from tests.conftest import APP_FATBIN, build_machine


def make(backend_cls, **kw):
    machine = build_machine(**kw)
    backend = backend_cls(machine[3])
    backend.register_app_binary(APP_FATBIN)
    return machine, backend


class TestNaiveProxyCosts:
    def test_proxy_call_much_slower_than_native(self):
        """Per-call dispatch (a cheap non-blocking call): the proxy RPC
        dwarfs the native library call."""
        (proc_p, *_), proxy = make(NaiveProxyBackend)
        (proc_n, *_), native = make(NativeBackend)
        t0 = proc_p.clock_ns
        p = proxy.malloc(64)
        proxy_cost = proc_p.clock_ns - t0
        t0 = proc_n.clock_ns
        native.malloc(64)
        native_cost = proc_n.clock_ns - t0
        assert proxy_cost > 3 * native_cost

    def test_cublas_ships_operand_buffers(self):
        (proc, *_), proxy = make(NaiveProxyBackend)
        blas = CuBlas(proxy)
        n = (1 << 20) // 4  # 1 MB vectors
        px = proxy.malloc(4 * n)
        py = proxy.malloc(4 * n)
        t0 = proc.clock_ns
        blas.sdot(px, py, n)
        cost = proc.clock_ns - t0
        # 2 × 1 MB through CMA at ~11 GB/s ≈ 180 µs dominates.
        assert cost > 150_000

    def test_kernel_launch_with_managed_ships_buffer(self):
        (proc, *_), proxy = make(NaiveProxyBackend)
        p = proxy.malloc_managed(1 << 20)
        t0 = proc.clock_ns
        proxy.launch("k", managed=[ManagedUse(p, 0, 1 << 20, "rw")])
        # in + out shipping of 1 MB each way
        assert proc.clock_ns - t0 > 150_000

    def test_channel_accounting(self):
        machine, proxy = make(NaiveProxyBackend)
        proxy.malloc(64)
        assert proxy.channel.total_rpcs >= 1


class TestCrumCosts:
    def test_crum_cheaper_than_naive_proxy_but_more_than_native(self):
        costs = {}
        for name, cls in (
            ("native", NativeBackend),
            ("crum", CrumBackend),
            ("naive", NaiveProxyBackend),
        ):
            (proc, *_), b = make(cls)
            blas = CuBlas(b)
            n = (1 << 20) // 4
            px, py = b.malloc(4 * n), b.malloc(4 * n)
            t0 = proc.clock_ns
            blas.sdot(px, py, n)
            costs[name] = proc.clock_ns - t0
        assert costs["native"] < costs["crum"] < costs["naive"]

    def test_shadow_sync_charged_per_managed_launch(self):
        (proc, *_), crum = make(CrumBackend)
        p = crum.malloc_managed(4 * UVM_PAGE)
        before = crum.shadow_pages_synced
        crum.launch("k", managed=[ManagedUse(p, 0, 4 * UVM_PAGE, "rw")])
        assert crum.shadow_pages_synced - before == 4


class TestCrumFailureModes:
    def test_two_streams_writing_same_page_rejected(self):
        _, crum = make(CrumBackend)
        p = crum.malloc_managed(UVM_PAGE)
        s1 = crum.stream_create()
        s2 = crum.stream_create()
        crum.launch(
            "k", duration_ns=1_000_000, stream=s1,
            managed=[ManagedUse(p, 0, UVM_PAGE, "w")],
        )
        with pytest.raises(UnsupportedFeatureError, match="concurrent"):
            crum.launch(
                "k", duration_ns=1_000_000, stream=s2,
                managed=[ManagedUse(p, 0, UVM_PAGE, "w")],
            )

    def test_disjoint_pages_on_two_streams_allowed(self):
        _, crum = make(CrumBackend)
        p = crum.malloc_managed(4 * UVM_PAGE)
        s1, s2 = crum.stream_create(), crum.stream_create()
        crum.launch(
            "k", duration_ns=1_000_000, stream=s1,
            managed=[ManagedUse(p, 0, UVM_PAGE, "w")],
        )
        crum.launch(  # different pages: fine
            "k", duration_ns=1_000_000, stream=s2,
            managed=[ManagedUse(p, 2 * UVM_PAGE, UVM_PAGE, "w")],
        )

    def test_host_access_during_inflight_kernel_write_rejected(self):
        """The read-modify-write restriction (§2.3)."""
        _, crum = make(CrumBackend)
        p = crum.malloc_managed(UVM_PAGE)
        s = crum.stream_create()
        crum.launch(
            "k", duration_ns=10_000_000, stream=s,
            managed=[ManagedUse(p, 0, UVM_PAGE, "w")],
        )
        with pytest.raises(UnsupportedFeatureError, match="read-modify-write"):
            crum.managed_view(p, 64)

    def test_host_access_after_synchronize_allowed(self):
        _, crum = make(CrumBackend)
        p = crum.malloc_managed(UVM_PAGE)
        crum.launch("k", managed=[ManagedUse(p, 0, UVM_PAGE, "w")])
        crum.device_synchronize()
        crum.managed_view(p, 64)  # the supported pattern

    def test_crac_handles_the_pattern_crum_rejects(self):
        """Contribution 2: CRAC supports what CRUM cannot."""
        from repro.core import CracSession

        session = CracSession(seed=13)
        b = session.backend
        b.register_app_binary(APP_FATBIN)
        p = b.malloc_managed(UVM_PAGE)
        s1, s2 = b.stream_create(), b.stream_create()
        b.launch("k", duration_ns=1_000_000, stream=s1,
                 managed=[ManagedUse(p, 0, UVM_PAGE, "w")])
        b.launch("k", duration_ns=1_000_000, stream=s2,
                 managed=[ManagedUse(p, 0, UVM_PAGE, "w")])  # no error
        image = session.checkpoint()
        session.kill()
        session.restart(image)  # and it checkpoints/restarts fine


class TestCrcuda:
    def test_no_managed_memory(self):
        _, crcuda = make(CrcudaBackend)
        with pytest.raises(UnsupportedFeatureError, match="UVA/UVM"):
            crcuda.malloc_managed(UVM_PAGE)

    def test_device_memory_still_works(self):
        _, crcuda = make(CrcudaBackend)
        p = crcuda.malloc(1024)
        crcuda.free(p)


class TestCheCuda:
    def test_pre_uva_checkpoint_restart_works(self):
        """CheCUDA's world before CUDA 4.0: no UVA, restore succeeds."""
        (proc, loader, device, rt), backend = make(NativeBackend)
        che = CheCudaCheckpointer(rt)
        p = backend.malloc(256)
        che.note_alloc("device", 256, p)
        backend.device_view(p, 4)[:] = np.frombuffer(b"data", np.uint8)
        image = che.checkpoint()

        fresh = build_machine()[3]
        che.restart(image, fresh)
        got = fresh.cudaMalloc(64)  # library is consistent: calls work
        assert got in fresh.buffers
        # Content of the replayed buffer was restored.
        assert fresh.device_view(p, 4).tobytes() == b"data"

    def test_uvm_breaks_checuda(self):
        """The §2.2 failure: UVA/UVM state cannot be destroyed/restored."""
        (proc, loader, device, rt), backend = make(NativeBackend)
        che = CheCudaCheckpointer(rt)
        p = backend.malloc_managed(UVM_PAGE)
        che.note_alloc("managed", UVM_PAGE, p)
        image = che.checkpoint()
        fresh = build_machine()[3]
        with pytest.raises(CudaError, match="INCONSISTENT"):
            che.restart(image, fresh)

    def test_destroyed_runtime_unusable_after_checkpoint(self):
        (_, _, _, rt), backend = make(NativeBackend)
        che = CheCudaCheckpointer(rt)
        che.checkpoint()
        with pytest.raises(CudaError):
            backend.malloc(64)
