"""Tests for CRUM's checkpoint/restart path and the CRAC comparison."""

import numpy as np
import pytest

from repro.core import CracSession
from repro.core.halves import SplitProcess
from repro.cuda.api import FatBinary
from repro.proxy.crum import CrumBackend, CrumCheckpointer

FB = FatBinary("ck.fatbin", ("k",))


def make_crum(seed=81):
    split = SplitProcess(seed=seed)
    backend = CrumBackend(split.runtime)
    backend.register_app_binary(FB)
    return split, backend


class TestCrumCheckpoint:
    def test_checkpoint_restart_restores_device_state(self):
        split, backend = make_crum()
        che = CrumCheckpointer(backend)
        p = backend.malloc(256)
        backend.device_view(p, 8)[:] = np.frombuffer(b"crumdata", np.uint8)
        image = che.checkpoint()

        fresh = SplitProcess(seed=81)
        che.restart(image, fresh.runtime)
        assert backend.device_view(p, 8).tobytes() == b"crumdata"

    def test_checkpoint_drains_through_cma(self):
        """CRUM's drain crosses the proxy boundary: checkpoint time grows
        with device bytes at CMA (not just PCIe) rates."""
        split, backend = make_crum()
        che = CrumCheckpointer(backend)
        backend.malloc(100 << 20)  # 100 MB device buffer
        before = backend.channel.total_bytes
        che.checkpoint()
        assert backend.channel.total_bytes - before >= 100 << 20

    def test_restart_spawns_fresh_proxy(self):
        split, backend = make_crum(seed=83)
        che = CrumCheckpointer(backend)
        backend.malloc(64)
        image = che.checkpoint()
        fresh = SplitProcess(seed=83)
        cost = che.restart(image, fresh.runtime)
        assert cost >= CrumCheckpointer.PROXY_SPAWN_NS

    def test_resource_log_replayed(self):
        split, backend = make_crum(seed=84)
        che = CrumCheckpointer(backend)
        ptrs = [backend.malloc(4096) for _ in range(5)]
        backend.free(ptrs[2])
        image = che.checkpoint()
        fresh = SplitProcess(seed=84)
        che.restart(image, fresh.runtime)
        for i, p in enumerate(ptrs):
            assert (p in fresh.runtime.buffers) == (i != 2)


class TestCracVsCrumCheckpointCosts:
    def test_crac_drains_cheaper_than_crum(self):
        """The structural claim: CRAC's single-address-space drain pays
        PCIe once; CRUM's pays PCIe *plus* a CMA crossing. (Both then pay
        the same host-image write, which this comparison excludes.)"""
        device_mb = 200
        from repro.gpu.timing import GPU_SPECS

        crac_drain_ns = (device_mb << 20) / GPU_SPECS["V100"].pcie_bw * 1e9

        split, backend = make_crum(seed=86)
        che = CrumCheckpointer(backend)
        backend.malloc(device_mb << 20)
        t0 = split.process.clock_ns
        che.checkpoint()
        crum_drain_ns = split.process.clock_ns - t0

        assert crum_drain_ns > 2 * crac_drain_ns

    def test_crum_restart_pays_proxy_spawn_crac_does_not(self):
        session = CracSession(seed=87)
        session.backend.register_app_binary(FB)
        session.backend.malloc(1024)
        image = session.checkpoint()
        session.kill()
        report = session.restart(image)

        split, backend = make_crum(seed=88)
        che = CrumCheckpointer(backend)
        backend.malloc(1024)
        crum_image = che.checkpoint()
        fresh = SplitProcess(seed=88)
        crum_cost = che.restart(crum_image, fresh.runtime)

        assert crum_cost > report.restart_time_ns
