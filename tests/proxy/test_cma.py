"""Tests for the CMA channel cost model."""

import pytest

from repro.proxy.cma import BANDWIDTH_CURVE, CmaChannel, cma_bandwidth


class TestBandwidthCurve:
    def test_anchors_reproduced(self):
        for size, bw in BANDWIDTH_CURVE:
            assert cma_bandwidth(int(size)) == pytest.approx(bw)

    def test_monotone_decreasing(self):
        sizes = [1 << k for k in range(10, 28)]
        bws = [cma_bandwidth(s) for s in sizes]
        for a, b in zip(bws, bws[1:]):
            assert b <= a + 1e-6

    def test_clamped_at_extremes(self):
        assert cma_bandwidth(1) == BANDWIDTH_CURVE[0][1]
        assert cma_bandwidth(1 << 40) == BANDWIDTH_CURVE[-1][1]

    def test_table3_implied_bandwidths(self):
        """Transfer times implied by Table 3 (see cma.py docstring)."""
        # 1 MB at ~11 GB/s ⇒ ~91 µs per 1 MB buffer
        ch = CmaChannel()
        t = ch.transfer_cost_ns(1 << 20)
        assert 80_000 < t < 110_000
        # 100 MB at ~4 GB/s ⇒ ~25 ms
        t = ch.transfer_cost_ns(100 << 20)
        assert 23e6 < t < 29e6


class TestChannel:
    def test_rpc_cost_includes_payload(self):
        ch = CmaChannel()
        small = ch.rpc_cost_ns(0)
        big = ch.rpc_cost_ns(1 << 20)
        assert big > small + 50_000

    def test_zero_transfer_is_free(self):
        ch = CmaChannel()
        assert ch.transfer_cost_ns(0) == 0.0
        assert ch.total_bytes == 0

    def test_accounting(self):
        ch = CmaChannel()
        ch.rpc_cost_ns(100)
        ch.transfer_cost_ns(1000)
        assert ch.total_rpcs == 1
        assert ch.total_bytes == 1100
