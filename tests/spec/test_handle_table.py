"""Handle-table versioning: unit tests + property-based interleavings.

The table is the validation substrate for speculative checkpoints, so
its invariants are checked two ways: unit tests against the POSHandle
add/commit/restore lifecycle (including arena-style key reuse), and a
Hypothesis property driving random interleavings of kernel launches and
buffer writes through a real session's capture window — every run must
either commit digest-equal to the cut or roll back and replay to
digest-equal.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CracSession
from repro.cuda.api import FatBinary
from repro.spec import HandleTable, brute_force_advanced, detect_conflicts


class TestLifecycle:
    def test_add_starts_at_version_zero(self):
        t = HandleTable()
        rec = t.add("stream", 1)
        assert rec.version == 0
        assert t.version("stream", 1) == 0
        assert len(t) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            HandleTable().add("texture", 1)

    def test_bump_advances_monotonically(self):
        t = HandleTable()
        t.add("event", 7)
        assert t.bump("event", 7) == 1
        assert t.bump("event", 7) == 2

    def test_bump_lazily_registers(self):
        """The default stream exists before any table is attached."""
        t = HandleTable()
        assert t.bump("stream", 0) == 1
        assert t.version("stream", 0) == 1

    def test_remove_is_a_version_advancing_mutation(self):
        t = HandleTable()
        t.add("stream", 3)
        cut = t.cut()
        t.remove("stream", 3)
        assert t.advanced_since(cut) == [("stream", 3, 0, 1)]

    def test_readded_dead_key_reads_as_changed(self):
        """Arena-style sid reuse: destroy + create with the same key must
        not compare equal to the pre-destroy snapshot."""
        t = HandleTable()
        t.add("stream", 3)
        cut = t.cut()
        t.remove("stream", 3)
        t.add("stream", 3)  # new life, same key
        rows = t.advanced_since(cut)
        assert rows and rows[0][3] > rows[0][2]

    def test_restore_resets_to_snapshot(self):
        t = HandleTable()
        t.add("stream", 1)
        t.bump("stream", 1)
        snap = t.cut()
        t.bump("stream", 1)
        t.add("event", 2)
        t.restore(snap)
        assert t.advanced_since(snap) == []
        assert t.version("stream", 1) == 1

    def test_cut_is_sorted_and_complete(self):
        t = HandleTable()
        t.add("module", 9)
        t.add("stream", 2)
        t.add("stream", 1)
        snap = t.cut()
        assert set(snap) == {"stream", "event", "module"}
        assert list(snap["stream"]) == [1, 2]


# -- advanced_since vs brute-force oracle -----------------------------------

_ops_st = st.lists(
    st.tuples(
        st.sampled_from(["add", "bump", "remove"]),
        st.sampled_from(["stream", "event", "module"]),
        st.integers(min_value=0, max_value=4),
    ),
    max_size=30,
)


class TestConflictDetectorOracle:
    @settings(max_examples=100, deadline=None)
    @given(before_ops=_ops_st, after_ops=_ops_st)
    def test_advanced_since_matches_brute_force(self, before_ops, after_ops):
        t = HandleTable()
        for op, kind, key in before_ops:
            getattr(t, op)(kind, key)
        snap = t.cut()
        for op, kind, key in after_ops:
            getattr(t, op)(kind, key)
        assert t.advanced_since(snap) == brute_force_advanced(snap, t)

    @settings(max_examples=100, deadline=None)
    @given(ops=_ops_st)
    def test_no_mutation_means_no_conflict(self, ops):
        t = HandleTable()
        for op, kind, key in ops:
            getattr(t, op)(kind, key)
        assert t.advanced_since(t.cut()) == []


# -- property: interleavings through a live capture window -------------------

_window_ops_st = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 3), st.integers(1, 255)),
        st.tuples(st.just("launch"), st.integers(0, 3), st.just(0)),
        st.tuples(st.just("event"), st.integers(0, 3), st.just(0)),
    ),
    max_size=8,
)


class TestCaptureWindowProperty:
    """Random interleavings of launches/writes inside the capture window:
    the committed image is always digest-equal to the cut state, and any
    in-window mutation is either replayed (conflicts detected) or proven
    harmless (no version/epoch advanced)."""

    @settings(max_examples=25, deadline=None)
    @given(ops=_window_ops_st)
    def test_commit_digest_equal_or_replayed(self, ops):
        nbytes = 4096
        session = CracSession(seed=11)
        session.backend.register_app_binary(FatBinary("h.fatbin", ("k",)))
        backend = session.backend
        addrs = [backend.malloc(nbytes) for _ in range(4)]
        for i, a in enumerate(addrs):
            backend.device_view(a, nbytes)[:] = i + 1
        at_cut = [backend.device_view(a, nbytes).copy() for a in addrs]

        image = session.checkpoint(speculative=True)
        writer = session.pending_forks[0]
        # The capture window is open: drive the random interleaving.
        mutated = False
        for op, idx, val in ops:
            if op == "write":
                backend.device_view(addrs[idx], nbytes // 2)[:] = val
                mutated = True
            elif op == "launch":
                backend.launch("k")
                mutated = True
            else:
                e = backend.event_create()
                backend.event_record(e)
                mutated = True
        session.finish_forked_checkpoints()

        assert writer.committed
        conflicts = detect_conflicts(image, None)
        # mark_committed emptied the captures, so re-detect returns [];
        # the writer recorded what validation saw.
        assert conflicts == []
        if not mutated:
            assert writer.invalidated == 0

        # Restore: every buffer must hold its cut-point bytes, no matter
        # what the window did.
        session.kill()
        session.restart(image)
        for a, expect in zip(addrs, at_cut):
            got = session.backend.device_view(a, nbytes)
            assert np.array_equal(got, expect), (
                "speculative restore diverged from the cut state"
            )
        session.kill()

    @settings(max_examples=10, deadline=None)
    @given(val=st.integers(1, 255))
    def test_aborted_window_rolls_back_and_replays_via_fallback(self, val):
        """Abort mid-window, fall back to a stop-the-world cut: the
        fallback must capture the *latest* bytes (replay-equivalent)."""
        from repro.harness.fault_injection import FaultInjector, FaultSpec

        nbytes = 4096
        fi = FaultInjector()
        session = CracSession(seed=13, fault_injector=fi)
        session.backend.register_app_binary(FatBinary("h.fatbin", ("k",)))
        backend = session.backend
        a = backend.malloc(nbytes)
        backend.device_view(a, nbytes)[:] = 5
        session.checkpoint(speculative=True)
        backend.device_view(a, nbytes)[:] = val
        fi.arm(FaultSpec(
            "spec-validate", at_count=fi.visits["spec-validate"] + 1
        ))
        session.finish_forked_checkpoints()  # falls back to forked
        assert session.pending_forks == []
        fallback = session.coordinator.images[-1]
        assert fallback.committed
        session.kill()
        session.restart(fallback)
        got = session.backend.device_view(a, nbytes)
        assert np.all(got == val), (
            "fallback cut lost the post-abort window writes"
        )
        session.kill()
