"""Speculative (validated-concurrency) checkpoint semantics.

The cut does not quiesce: kernels keep launching through the capture
window, validation at finish time detects in-window mutations via the
handle-version table + dirty epochs, conflicted resources replay, and
the committed image stays digest-equal to a stop-the-world cut. A
rolled-back speculation falls back to the forked path with every dirty
bit intact.
"""

import numpy as np
import pytest

from repro.core import CracSession
from repro.cuda.api import FatBinary
from repro.dmtcp.store import CheckpointStore
from repro.errors import SpeculationAbortedError
from repro.harness.fault_injection import FaultInjector, FaultSpec
from repro.linux import PAGE_SIZE


def make_session(**kw):
    session = CracSession(seed=23, **kw)
    session.backend.register_app_binary(FatBinary("sp.fatbin", ("k",)))
    return session


BIG = 512 << 20  # large enough that capture + write dominate the stall


class TestSpeculativeStall:
    def test_stall_is_near_zero_vs_forked(self):
        s_fork = make_session()
        s_fork.split.upper_mmap(BIG)
        t0 = s_fork.process.clock_ns
        s_fork.checkpoint(forked=True)
        fork_stall = s_fork.process.clock_ns - t0

        s_spec = make_session()
        s_spec.split.upper_mmap(BIG)
        t0 = s_spec.process.clock_ns
        image = s_spec.checkpoint(speculative=True)
        spec_stall = s_spec.process.clock_ns - t0

        # The forked mode still pays quiesce + snapshot walk; the
        # speculative cut pays only the version-table snapshot.
        assert spec_stall < fork_stall / 10
        assert image.checkpoint_time_ns == pytest.approx(spec_stall)
        writer = s_spec.pending_forks[0]
        assert writer.in_flight(s_spec.process.clock_ns)
        assert writer.validate_end_ns > s_spec.process.clock_ns

    def test_kernels_keep_launching_through_the_window(self):
        session = make_session()
        session.split.upper_mmap(BIG)
        session.checkpoint(speculative=True)
        writer = session.pending_forks[0]
        assert writer.in_flight(session.process.clock_ns)
        # No quiesce: the device accepts work mid-capture.
        for _ in range(4):
            session.backend.launch("k")
        assert session.device.total_kernels >= 4
        session.finish_forked_checkpoints()
        assert writer.committed

    def test_app_work_overlapping_the_window_hides_the_wait(self):
        session = make_session()
        session.split.upper_mmap(BIG)
        session.checkpoint(speculative=True)
        writer = session.pending_forks[0]
        session.process.advance_to(writer.validate_end_ns + 1.0)
        session.finish_forked_checkpoints()
        assert writer.residual_wait_ns == 0.0
        assert writer.committed


class TestValidation:
    def test_clean_window_commits_without_conflicts(self):
        session = make_session()
        p = session.backend.malloc(4096)
        session.backend.device_view(p, 4096)[:] = 3
        session.checkpoint(speculative=True)
        writer = session.pending_forks[0]
        session.finish_forked_checkpoints()
        assert writer.committed
        assert writer.invalidated == 0
        assert writer.replayed_bytes == 0

    def test_in_window_buffer_write_is_invalidated_and_replayed(self):
        session = make_session()
        p = session.backend.malloc(1 << 20)
        session.backend.device_view(p, 1 << 20)[:] = 17
        image = session.checkpoint(speculative=True)
        session.backend.device_view(p, 1 << 19)[:] = 99
        session.finish_forked_checkpoints()
        writer = image.forked_writer
        assert writer.invalidated > 0
        assert writer.replayed_bytes > 0
        assert writer.replay_time_ns > 0
        assert writer.committed
        # The image holds the *cut* bytes, not the in-window write.
        session.kill()
        session.restart(image)
        assert np.all(session.backend.device_view(p, 1 << 20) == 17)

    def test_in_window_stream_ops_conflict_via_handle_table(self):
        session = make_session()
        stream = session.backend.stream_create()
        image = session.checkpoint(speculative=True)
        session.backend.launch("k", stream=stream)
        session.finish_forked_checkpoints()
        writer = image.forked_writer
        kinds = {c.kind for c in writer.conflicts}
        assert "stream" in kinds
        assert writer.committed

    def test_in_window_host_write_is_invalidated(self):
        session = make_session()
        upper = session.split.upper_mmap(4 * PAGE_SIZE)
        session.process.vas.write(upper, b"base")
        image = session.checkpoint(speculative=True)
        session.process.vas.write(upper + PAGE_SIZE, b"in-window")
        session.finish_forked_checkpoints()
        writer = image.forked_writer
        assert any(c.kind == "region" for c in writer.conflicts)
        assert writer.committed
        # The re-written page stays dirty for the next incremental cut.
        assert 1 in session.process.vas.find(upper).dirty

    def test_restore_is_digest_equal_to_stop_the_world(self):
        """Same state, one stop-the-world cut vs one speculative cut
        with in-window noise: identical restored bytes."""
        def build():
            s = make_session()
            p = s.backend.malloc(8192)
            s.backend.device_view(p, 8192)[:] = (
                np.arange(8192, dtype=np.uint8) % 251
            )
            return s, p

        s1, p1 = build()
        sync_image = s1.checkpoint()
        s1.kill()
        s1.restart(sync_image)
        want = s1.backend.device_view(p1, 8192).copy()
        s1.kill()

        s2, p2 = build()
        spec_image = s2.checkpoint(speculative=True)
        s2.backend.device_view(p2, 4096)[:] = 0  # in-window noise
        s2.finish_forked_checkpoints()
        s2.kill()
        s2.restart(spec_image)
        got = s2.backend.device_view(p2, 8192)
        assert np.array_equal(got, want)
        s2.kill()


class TestRollbackAndFallback:
    def test_validation_fault_falls_back_to_forked(self):
        fi = FaultInjector()
        session = make_session(fault_injector=fi)
        upper = session.split.upper_mmap(4 * PAGE_SIZE)
        session.process.vas.write(upper, b"dirty")
        spec_image = session.checkpoint(speculative=True)
        writer = session.pending_forks[0]
        fi.arm(FaultSpec(
            "spec-validate", at_count=fi.visits["spec-validate"] + 1
        ))
        session.finish_forked_checkpoints()
        assert writer.aborted
        assert not spec_image.committed
        # The fallback cut committed with the same parameters.
        fallback = session.coordinator.images[-1]
        assert fallback is not spec_image
        assert fallback.committed
        assert not fallback.speculative
        assert session.pending_forks == []

    def test_fallback_preserves_store_parameters(self):
        fi = FaultInjector()
        session = make_session(fault_injector=fi)
        session.split.upper_mmap(4 * PAGE_SIZE)
        store = CheckpointStore()
        session.checkpoint(speculative=True, store=store)
        fi.arm(FaultSpec(
            "spec-validate", at_count=fi.visits["spec-validate"] + 1
        ))
        session.finish_forked_checkpoints()
        # The speculation aborted, but the forked re-issue still went
        # through the store's two-phase commit.
        assert len(store.generations) == 1

    def test_kill_with_inflight_speculation_falls_back_and_commits(self):
        """kill() drains writers while the parent is still alive, so an
        aborted speculation still gets its forked fallback — the job
        stays durably checkpointed across the death (CRUM's model)."""
        fi = FaultInjector()
        session = make_session(fault_injector=fi)
        session.split.upper_mmap(4 * PAGE_SIZE)
        store = CheckpointStore()
        session.checkpoint(speculative=True, store=store)
        fi.arm(FaultSpec(
            "spec-validate", at_count=fi.visits["spec-validate"] + 1
        ))
        session.kill()
        assert len(store.generations) == 1

    def test_dead_parent_cannot_fall_back(self):
        """Fallback needs a live process to re-cut; a dead parent's
        aborted speculation propagates."""
        fi = FaultInjector()
        session = make_session(fault_injector=fi)
        session.split.upper_mmap(BIG)
        session.checkpoint(speculative=True)
        fi.arm(FaultSpec(
            "spec-validate", at_count=fi.visits["spec-validate"] + 1
        ))
        session.process.kill()  # the process dies out from under us
        with pytest.raises(SpeculationAbortedError):
            session.finish_forked_checkpoints()

    def test_abort_is_idempotent_and_preserves_dirty(self):
        session = make_session()
        upper = session.split.upper_mmap(4 * PAGE_SIZE)
        session.process.vas.write(upper, b"dirty")
        p = session.backend.malloc(4096)
        session.backend.device_view(p, 16)[:] = 9
        image = session.checkpoint(speculative=True)
        writer = session.pending_forks[0]
        session.abort_pending_writers()
        writer.abort()  # second abort: no-op
        assert writer.aborted
        assert not image.committed
        assert session.pending_forks == []
        assert 0 in session.process.vas.find(upper).dirty
        buf = session.runtime.buffers[p]
        assert buf.contents.dirty_byte_count > 0
        # mark_committed on the rolled-back image must clear nothing.
        image.mark_committed()
        assert 0 in session.process.vas.find(upper).dirty
        assert buf.contents.dirty_byte_count > 0

    def test_speculative_rejects_forked_combination(self):
        session = make_session()
        with pytest.raises(ValueError):
            session.checkpoint(forked=True, speculative=True)
