"""Cluster fault-domain tests: interconnect, migration, elastic, failover."""
