"""Rung 4 of the ladder: heartbeat death detection and node failover."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterNode, Interconnect
from repro.core.session import CracSession
from repro.cuda.api import FatBinary
from repro.dmtcp.store import CheckpointStore
from repro.errors import ClusterError, NodeDeathError
from repro.harness.fault_injection import FaultInjector, FaultSpec

FB = FatBinary("failover.fatbin", ("mutate",))
N = 64
NBYTES = 4 * N


def bump(session, ptr):
    def fn():
        view = session.backend.device_view(ptr, NBYTES, np.float32)
        np.add(view, 1.0, out=view)

    session.backend.launch("mutate", fn, duration_ns=50_000.0)
    session.backend.device_synchronize()


class TestHeartbeat:
    def test_dead_node_is_declared_after_max_missed_rounds(self):
        cluster = Cluster(
            [ClusterNode("a"), ClusterNode("b")], max_missed=2
        )
        assert cluster.heartbeat_rounds() == []
        cluster.kill_node("b")
        assert cluster.heartbeat_rounds() == ["b"]
        assert cluster.dead_nodes() == ["b"]

    def test_detection_latency_is_charged_to_survivors(self):
        src = ClusterNode("a")
        cluster = Cluster(
            [src, ClusterNode("b")], heartbeat_interval_s=0.5, max_missed=2
        )
        session = src.launch("job")
        t0 = session.process.clock_ns
        cluster.kill_node("b")
        cluster.heartbeat_rounds()
        # Two missed rounds at 0.5 s each before the verdict.
        assert session.process.clock_ns - t0 == pytest.approx(1e9)
        session.kill()

    def test_duplicate_node_names_are_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([ClusterNode("a"), ClusterNode("a")])


class TestFailoverRung:
    def make_cluster(self, *, gpu_dst="K600"):
        src = ClusterNode("src", gpu="V100")
        dst = ClusterNode("dst", gpu=gpu_dst)
        cluster = Cluster([src, dst], interconnect=Interconnect(seed=6))
        return cluster, src, dst

    def test_ladder_reaches_rung_4_and_finishes_on_the_survivor(self):
        cluster, src, dst = self.make_cluster()
        inj = FaultInjector(seed=3)
        session = CracSession(gpu="V100", seed=7, fault_injector=inj)
        src.adopt("job", session)
        # Local restores off the table: a dying node's store is no
        # recovery line, so the only rung left past reset is failover.
        domain = session.enable_fault_domain(src.store, max_restores=0)
        session.backend.register_app_binary(FB)
        ptr = session.backend.malloc(NBYTES)
        session.backend.memcpy(
            ptr, np.arange(N, dtype=np.float32), NBYTES, "h2d"
        )
        bump(session, ptr)
        assert domain.checkpoint() is not None
        cluster.replicate("src", "dst")
        dead = []
        base_handler = cluster.make_failover_handler(
            session, "job", "src", "dst"
        )

        def handler(exc):
            cluster.kill_node("src")
            dead.extend(cluster.heartbeat_rounds())
            return base_handler(exc)

        domain.failover_handler = handler
        session.process.advance(5e6)
        inj.arm(FaultSpec("ecc", at_count=inj.visits["ecc"] + 1))
        bump(session, ptr)  # fatal ECC → dying node → rung 4
        rep = domain.report
        assert rep.failovers == 1
        assert rep.rung_counts()["failover"] == 1
        assert rep.lost_work_ns >= 5e6
        assert dead == ["src"]
        assert session.gpu == "K600"
        assert "job" in dst.sessions and "job" not in src.sessions
        assert domain.store is dst.store
        # Deterministic redo: the interrupted kernel re-executed on the
        # survivor, so state matches the fault-free timeline exactly.
        out = np.empty(N, dtype=np.float32)
        session.backend.memcpy(out, ptr, NBYTES, "d2h")
        assert np.array_equal(out, np.arange(N, dtype=np.float32) + 2.0)
        session.kill()

    def test_failover_onto_a_dead_target_is_a_typed_error(self):
        cluster, src, dst = self.make_cluster()
        session = src.launch("job")
        handler = cluster.make_failover_handler(session, "job", "src", "dst")
        dst.fail()
        with pytest.raises(NodeDeathError):
            handler(RuntimeError("node died"))
        session.kill()

    def test_failover_without_a_shipped_generation_is_refused(self):
        cluster, src, dst = self.make_cluster()
        session = src.launch("job")
        session.checkpoint(store=src.store)  # local only — never shipped
        handler = cluster.make_failover_handler(session, "job", "src", "dst")
        with pytest.raises(ClusterError):
            handler(RuntimeError("node died"))
        session.kill()


def test_rung_counts_include_the_failover_rung():
    session = CracSession(seed=1)
    domain = session.enable_fault_domain(CheckpointStore())
    counts = domain.report.rung_counts()
    assert set(counts) == {"retry", "stream-reset", "restore", "failover"}
    assert all(v == 0 for v in counts.values())
    session.kill()


def test_campaign_failover_scenario_is_bit_correct():
    from repro.apps.rodinia import Gaussian
    from repro.harness.fault_tolerance import run_node_failover_scenario

    cell = run_node_failover_scenario(
        Gaussian, scale=0.02, seed=0, gpu_src="V100", gpu_dst="K600"
    )
    assert "skipped" not in cell, cell
    assert cell["bit_correct"] is True
    assert cell["failovers"] == 1
    assert cell["declared_dead"] == ["src"]
    assert cell["finished_on"] == "dst"
    assert cell["rung_counts"]["failover"] == 1
