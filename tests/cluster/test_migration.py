"""Live and naive migration: blackout, integrity, pins, link faults."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterNode,
    Interconnect,
    LiveMigration,
    naive_migrate,
)
from repro.core.session import CracSession
from repro.cuda.api import FatBinary
from repro.errors import ClusterError, MigrationError, NodeDeathError

FB = FatBinary("migrate.fatbin", ("mutate",))
N = 64
NBYTES = 4 * N


def make_session(node, job="job", seed=7):
    """A session homed on ``node`` with one buffer holding arange(N)."""
    session = CracSession(gpu=node.gpu, seed=seed)
    node.adopt(job, session)
    session.backend.register_app_binary(FB)
    ptr = session.backend.malloc(NBYTES)
    session.backend.memcpy(ptr, np.arange(N, dtype=np.float32), NBYTES, "h2d")
    return session, ptr


def bump(session, ptr):
    def fn():
        view = session.backend.device_view(ptr, NBYTES, np.float32)
        np.add(view, 1.0, out=view)

    session.backend.launch("mutate", fn, duration_ns=50_000.0)
    session.backend.device_synchronize()


def readback(session, ptr):
    out = np.empty(N, dtype=np.float32)
    session.backend.memcpy(out, ptr, NBYTES, "d2h")
    return out


class TestLiveMigration:
    def test_precopy_cutover_preserves_state_across_gpu_models(self):
        src = ClusterNode("a", gpu="V100")
        dst = ClusterNode("b", gpu="K600")
        session, ptr = make_session(src)
        mig = LiveMigration(
            session, src, dst, interconnect=Interconnect(seed=1), job="job"
        )
        mig.begin()
        bump(session, ptr)
        mig.precopy_round()
        bump(session, ptr)
        rep = mig.cutover()
        assert mig.phase == "done"
        assert session.gpu == "K600"
        assert "job" in dst.sessions and "job" not in src.sessions
        assert np.array_equal(
            readback(session, ptr), np.arange(N, dtype=np.float32) + 2.0
        )
        assert rep.mode == "live"
        assert rep.precopy_rounds == 1
        assert rep.full_bytes > 0 and rep.delta_bytes > 0
        assert rep.delta_bytes < rep.full_bytes
        assert rep.blackout_ns > 0
        # Work keeps flowing after the move.
        bump(session, ptr)
        assert np.array_equal(
            readback(session, ptr), np.arange(N, dtype=np.float32) + 3.0
        )

    def test_phase_order_is_enforced(self):
        src, dst = ClusterNode("a"), ClusterNode("b")
        session, _ = make_session(src)
        mig = LiveMigration(
            session, src, dst, interconnect=Interconnect(), job="job"
        )
        with pytest.raises(MigrationError):
            mig.precopy_round()
        with pytest.raises(MigrationError):
            mig.cutover()
        mig.begin()
        with pytest.raises(MigrationError):
            mig.begin()

    def test_cannot_target_a_dead_node(self):
        src, dst = ClusterNode("a"), ClusterNode("b")
        dst.fail()
        session, _ = make_session(src)
        with pytest.raises(NodeDeathError):
            LiveMigration(session, src, dst, interconnect=Interconnect())
        with pytest.raises(NodeDeathError):
            naive_migrate(session, src, dst, interconnect=Interconnect())

    def test_in_flight_generations_are_pinned_against_gc(self):
        # keep-1 retention on the source: without the in-flight pin,
        # checkpoints committed while the base image ships would evict it.
        src = ClusterNode("a", keep_generations=1)
        dst = ClusterNode("b")
        session, ptr = make_session(src)
        mig = LiveMigration(
            session, src, dst, interconnect=Interconnect(seed=2), job="job"
        )
        base_gen = mig.begin()
        for _ in range(3):
            bump(session, ptr)
            session.checkpoint(store=src.store)
        assert base_gen in src.store.generations
        assert base_gen in src.store.pinned()
        mig.precopy_round()
        mig.cutover()
        # The destination's imports are the ack: every pin is released.
        assert src.store.pinned() == []
        session.checkpoint(store=src.store)  # fresh root, then GC
        src.store.gc()
        assert base_gen not in src.store.generations


class TestBlackout:
    def _migrate(self, live):
        src = ClusterNode("a", gpu="V100")
        dst = ClusterNode("b", gpu="K600")
        ic = Interconnect(seed=3)
        session, ptr = make_session(src)
        # A fat upper half makes the full image dwarf the dirty delta —
        # the regime live migration exists for.
        session.split.upper_mmap(8 << 20)
        if live:
            mig = LiveMigration(session, src, dst, interconnect=ic, job="job")
            mig.begin()
            bump(session, ptr)
            mig.precopy_round()
            bump(session, ptr)
            rep = mig.cutover()
        else:
            bump(session, ptr)
            bump(session, ptr)
            rep = naive_migrate(session, src, dst, interconnect=ic, job="job")
        assert np.array_equal(
            readback(session, ptr), np.arange(N, dtype=np.float32) + 2.0
        )
        session.kill()
        return rep

    def test_live_blackout_beats_stop_ship_restore(self):
        live = self._migrate(live=True)
        naive = self._migrate(live=False)
        assert live.blackout_ns < naive.blackout_ns
        # Naive ships everything inside the blackout; live only the
        # final delta.
        assert naive.full_bytes > live.delta_bytes


class TestLinkFaults:
    def test_corrupt_then_drop_is_healed_by_retries(self):
        src, dst = ClusterNode("a"), ClusterNode("b")
        ic = Interconnect(seed=4, fault_plan={0: "corrupt", 1: "drop"})
        session, ptr = make_session(src)
        rep = naive_migrate(session, src, dst, interconnect=ic, job="job")
        assert rep.retries == 2
        assert np.array_equal(
            readback(session, ptr), np.arange(N, dtype=np.float32)
        )
        outcomes = [t.outcome for t in ic.transfers]
        assert outcomes == ["corrupt", "drop", "ok"]

    def test_persistent_faults_exhaust_the_budget(self):
        src, dst = ClusterNode("a"), ClusterNode("b")
        ic = Interconnect(seed=5, fault_plan={i: "drop" for i in range(10)})
        session, _ = make_session(src)
        with pytest.raises(MigrationError):
            naive_migrate(
                session, src, dst, interconnect=ic, job="job", retries=2
            )


class TestNode:
    def test_slots_and_duplicate_jobs_are_enforced(self):
        node = ClusterNode("a", slots=1)
        node.launch("j1")
        with pytest.raises(ClusterError):
            node.launch("j1")
        with pytest.raises(ClusterError):
            node.launch("j2")

    def test_adopt_requires_matching_gpu_model(self):
        node = ClusterNode("a", gpu="K600")
        session = CracSession(gpu="V100", seed=1)
        with pytest.raises(ClusterError):
            node.adopt("job", session)
        session.kill()

    def test_dead_node_refuses_new_work(self):
        node = ClusterNode("a")
        node.fail()
        with pytest.raises(NodeDeathError):
            node.launch("job")
