"""The bandwidth/latency-modeled interconnect and its fault injection."""

import pytest

from repro.cluster import Interconnect, LinkSpec


def test_wire_time_is_latency_plus_serialization():
    ic = Interconnect(spec=LinkSpec(bandwidth=1e9, latency_ns=1_000.0))
    rec = ic.send("a", "b", 1_000_000, 0.0)
    assert rec.start_ns == 0.0
    # 1 MB at 1 GB/s = 1e6 ns of serialization on top of the latency.
    assert rec.end_ns == pytest.approx(1_000.0 + 1e6)
    assert rec.duration_ns == pytest.approx(rec.end_ns - rec.start_ns)


def test_link_serializes_back_to_back_transfers():
    ic = Interconnect(spec=LinkSpec(bandwidth=1e9, latency_ns=1_000.0))
    first = ic.send("a", "b", 1_000_000, 0.0)
    second = ic.send("a", "b", 1_000_000, 0.0)
    # Same directed link: the second transfer queues behind the first.
    assert second.start_ns == pytest.approx(first.end_ns)
    # A different link is idle and starts immediately.
    other = ic.send("a", "c", 1_000_000, 0.0)
    assert other.start_ns == 0.0


def test_send_never_starts_before_now():
    ic = Interconnect()
    rec = ic.send("a", "b", 10, 5_000.0)
    assert rec.start_ns == 5_000.0


def test_fault_plan_forces_outcomes_by_global_index():
    ic = Interconnect(fault_plan={0: "corrupt", 2: "drop"})
    outcomes = [ic.send("a", "b", 100, 0.0).outcome for _ in range(4)]
    assert outcomes == ["corrupt", "ok", "drop", "ok"]
    assert [t.outcome for t in ic.faults()] == ["corrupt", "drop"]


def test_fault_prob_draws_are_seed_deterministic():
    mk = lambda: Interconnect(seed=42, fault_prob=0.5)
    a, b = mk(), mk()
    seq_a = [a.send("x", "y", 10, 0.0).outcome for _ in range(32)]
    seq_b = [b.send("x", "y", 10, 0.0).outcome for _ in range(32)]
    assert seq_a == seq_b
    assert any(o != "ok" for o in seq_a), "p=0.5 over 32 draws must fault"
    # A different seed gives an independent stream.
    c = Interconnect(seed=43, fault_prob=0.5)
    seq_c = [c.send("x", "y", 10, 0.0).outcome for _ in range(32)]
    assert seq_c != seq_a


def test_shipped_bytes_counts_every_attempt():
    ic = Interconnect(fault_plan={0: "drop"})
    ic.send("a", "b", 100, 0.0)
    ic.send("a", "b", 100, 0.0)
    # The dropped attempt still occupied the wire.
    assert ic.shipped_bytes == 200
    assert len(ic.transfers) == 2
