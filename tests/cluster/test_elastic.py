"""Elastic N → M restore: repartition properties + end-to-end replay."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import elastic_restore, repartition
from repro.errors import ClusterError
from repro.mpi.world import MpiWorld, split_bytes


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=4096), st.integers(min_value=1, max_value=16))
def test_split_bytes_is_lossless_and_near_equal(data, n):
    parts = split_bytes(data, n)
    assert len(parts) == n
    assert b"".join(parts) == data
    sizes = [len(p) for p in parts]
    assert max(sizes) - min(sizes) <= 1
    # The remainder lands on the leading chunks.
    assert sizes == sorted(sizes, reverse=True)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(st.binary(max_size=512), min_size=1, max_size=8),
    st.integers(min_value=1, max_value=12),
)
def test_repartition_preserves_bytes_for_any_n_to_m(parts, m):
    new = repartition(parts, m)
    assert len(new) == m
    assert b"".join(new) == b"".join(parts)


def test_split_bytes_rejects_nonpositive_counts():
    with pytest.raises(ValueError):
        split_bytes(b"abc", 0)


class TestElasticRestore:
    def test_three_ranks_restore_onto_one_two_and_five(self):
        data = bytes(range(256)) * 64  # 16 KB, every byte value present
        bias = bytes(reversed(range(256)))
        world = MpiWorld(3, seed=9)
        world.scatter_region("weights", data)
        world.scatter_region("bias", bias)
        images = world.checkpoint_all()
        manifest = world.partition_manifest()
        world.kill_all()
        for m in (1, 2, 5):
            new_world, rep = elastic_restore(images, manifest, m, seed=9)
            assert rep["ok"], rep
            assert rep["old_ranks"] == 3 and rep["new_ranks"] == m
            assert rep["replayed_calls"] > 0
            assert new_world.gather_region("weights") == data
            assert new_world.gather_region("bias") == bias
            new_world.kill_all()

    def test_rejects_empty_inputs(self):
        world = MpiWorld(2, seed=1)
        world.scatter_region("r", b"xy")
        images = world.checkpoint_all()
        manifest = world.partition_manifest()
        world.kill_all()
        with pytest.raises(ClusterError):
            elastic_restore(images, manifest, 0)
        with pytest.raises(ClusterError):
            elastic_restore([], manifest, 2)

    def test_scatter_region_rejects_duplicate_names(self):
        world = MpiWorld(2, seed=2)
        world.scatter_region("r", b"abcd")
        with pytest.raises(ValueError):
            world.scatter_region("r", b"efgh")
        assert world.gather_region("r") == b"abcd"
        world.kill_all()
