"""Regression: failed shipments must never leave pins behind.

Shipping pins every in-flight generation on the source so keep-N GC
cannot evict it mid-transfer. A shipment that *fails* (persistent link
faults exhaust the retry budget) will never be acknowledged — if its
pins leaked, every future checkpoint on that node would accrete
unreclaimable generations and the keep-N bound would be silently void.
These tests drive ``ship_chain`` and every ``LiveMigration`` phase into
``MigrationError`` over an all-drop link and require the source store
to come back pin-free with GC still bounding the generation count.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterNode,
    Interconnect,
    LiveMigration,
    ship_chain,
)
from repro.core.session import CracSession
from repro.cuda.api import FatBinary
from repro.errors import MigrationError

FB = FatBinary("pin.fatbin", ("mutate",))
N = 64
NBYTES = 4 * N

#: every transfer forced to drop — retries can never succeed
DEAD_LINK = {i: "drop" for i in range(256)}


def make_session(node, job="job", seed=5):
    session = CracSession(gpu=node.gpu, seed=seed)
    node.adopt(job, session)
    session.backend.register_app_binary(FB)
    ptr = session.backend.malloc(NBYTES)
    session.backend.memcpy(ptr, np.arange(N, dtype=np.float32), NBYTES, "h2d")
    return session, ptr


def bump(session, ptr):
    def fn():
        view = session.backend.device_view(ptr, NBYTES, np.float32)
        np.add(view, 1.0, out=view)

    session.backend.launch("mutate", fn, duration_ns=50_000.0)
    session.backend.device_synchronize()


def test_failed_ship_chain_releases_all_pins():
    src, dst = ClusterNode("a"), ClusterNode("b")
    session, _ = make_session(src)
    session.checkpoint(store=src.store)
    with pytest.raises(MigrationError):
        ship_chain(src, dst, Interconnect(fault_plan=dict(DEAD_LINK)))
    assert src.store.pinned() == []


@pytest.mark.parametrize("fail_at", ["begin", "precopy", "cutover"])
def test_failed_migration_phase_releases_all_pins(fail_at):
    src, dst = ClusterNode("a"), ClusterNode("b")
    session, ptr = make_session(src)
    # The link dies only at the phase under test; earlier phases ship
    # cleanly so later ones have pinned state to leak.
    healthy = Interconnect()
    dead = Interconnect(fault_plan=dict(DEAD_LINK))
    mig = LiveMigration(session, src, dst, interconnect=healthy, job="job")
    if fail_at == "begin":
        mig.interconnect = dead
        with pytest.raises(MigrationError):
            mig.begin()
    else:
        mig.begin()
        bump(session, ptr)
        if fail_at == "precopy":
            mig.interconnect = dead
            with pytest.raises(MigrationError):
                mig.precopy_round()
        else:
            mig.precopy_round()
            bump(session, ptr)
            mig.interconnect = dead
            with pytest.raises(MigrationError):
                mig.cutover()
    assert mig.phase == "failed"
    assert src.store.pinned() == []
    # abort() after the automatic cleanup stays a no-op.
    mig.abort()
    assert src.store.pinned() == []


def test_keep_n_gc_stays_bounded_after_failed_migration():
    src, dst = ClusterNode("a"), ClusterNode("b")
    keep = src.store.keep_generations
    session, ptr = make_session(src)
    mig = LiveMigration(
        session, src, dst,
        interconnect=Interconnect(fault_plan=dict(DEAD_LINK)), job="job",
    )
    with pytest.raises(MigrationError):
        mig.begin()
    # With the pins released, keep-N GC must keep bounding the store no
    # matter how many checkpoints follow the failed migration.
    for _ in range(3 * keep):
        bump(session, ptr)
        session.checkpoint(store=src.store)
    assert len(src.store.generations) <= keep
    assert src.store.pinned() == []
