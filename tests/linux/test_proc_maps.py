"""Tests for the merged /proc/PID/maps view (paper §3.2.2)."""

from repro.linux import PAGE_SIZE, VirtualAddressSpace
from repro.linux.proc_maps import ProcMaps


def make_vas():
    return VirtualAddressSpace(aslr=False, seed=0)


class TestMerging:
    def test_adjacent_same_perm_anonymous_regions_merge(self):
        vas = make_vas()
        vas.mmap(PAGE_SIZE, addr=0x1000_0000, fixed=True, tag="upper:buf")
        vas.mmap(PAGE_SIZE, addr=0x1000_1000, fixed=True, tag="lower:arena")
        entries = ProcMaps(vas).entries()
        assert len(entries) == 1
        assert entries[0].start == 0x1000_0000
        assert entries[0].end == 0x1000_2000

    def test_merge_hides_half_ownership(self):
        """The central §3.2.2 problem: the merged view cannot attribute
        bytes to upper or lower half."""
        vas = make_vas()
        vas.mmap(PAGE_SIZE, addr=0x1000_0000, fixed=True, tag="upper:data")
        vas.mmap(PAGE_SIZE, addr=0x1000_1000, fixed=True, tag="lower:data")
        (entry,) = ProcMaps(vas).entries()
        assert "upper" not in entry.pathname and "lower" not in entry.pathname

    def test_different_perms_do_not_merge(self):
        vas = make_vas()
        vas.mmap(PAGE_SIZE, addr=0x1000_0000, fixed=True, perms="r-x", tag="a")
        vas.mmap(PAGE_SIZE, addr=0x1000_1000, fixed=True, perms="rw-", tag="b")
        assert len(ProcMaps(vas).entries()) == 2

    def test_non_adjacent_do_not_merge(self):
        vas = make_vas()
        vas.mmap(PAGE_SIZE, addr=0x1000_0000, fixed=True)
        vas.mmap(PAGE_SIZE, addr=0x1000_2000, fixed=True)
        assert len(ProcMaps(vas).entries()) == 2

    def test_named_library_regions_do_not_merge_with_anon(self):
        vas = make_vas()
        vas.mmap(PAGE_SIZE, addr=0x1000_0000, fixed=True, tag="lower:libcuda.so")
        vas.mmap(PAGE_SIZE, addr=0x1000_1000, fixed=True, tag="lower:arena")
        entries = ProcMaps(vas).entries()
        assert len(entries) == 2
        assert entries[0].pathname == "libcuda.so"


class TestFormat:
    def test_format_is_kernel_like(self):
        vas = make_vas()
        vas.mmap(PAGE_SIZE, addr=0x1000_0000, fixed=True, perms="r-x", tag="x:libfoo.so")
        text = ProcMaps(vas).format()
        assert text.startswith("10000000-10001000 r-xp")
        assert text.endswith("libfoo.so")

    def test_entry_size(self):
        vas = make_vas()
        vas.mmap(3 * PAGE_SIZE, addr=0x1000_0000, fixed=True)
        (entry,) = ProcMaps(vas).entries()
        assert entry.size == 3 * PAGE_SIZE
