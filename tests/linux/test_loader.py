"""Tests for the split-process program loader (paper §3.1)."""

import pytest

from repro.errors import LoaderError
from repro.linux import ProgramImage, ProgramLoader, Segment, SimProcess
from repro.linux.loader import LOWER_HALF_WINDOW


def helper_image():
    """A lower-half helper: tiny app + libcuda + libc (Figure 1)."""
    return ProgramImage(
        name="helper",
        segments=(Segment("helper.text", 16 * 1024, "r-x"),
                  Segment("helper.data", 16 * 1024, "rw-")),
        libraries=(ProgramImage.simple("libcuda.so", 2048, 512),
                   ProgramImage.simple("libc.so", 1024, 256)),
    )


@pytest.fixture
def proc():
    return SimProcess(aslr=False, seed=3)


@pytest.fixture
def loader(proc):
    return ProgramLoader(proc)


class TestLoading:
    def test_lower_half_lands_in_reserved_window(self, loader):
        prog = loader.load(helper_image(), "lower")
        lo, hi = LOWER_HALF_WINDOW
        for start, size in prog.regions:
            assert lo <= start and start + size <= hi

    def test_upper_half_lands_outside_lower_window(self, loader):
        prog = loader.load(ProgramImage.simple("app"), "upper")
        lo, hi = LOWER_HALF_WINDOW
        for start, size in prog.regions:
            assert start + size <= lo or start >= hi

    def test_all_segments_mapped(self, loader):
        prog = loader.load(helper_image(), "lower")
        # 2 helper segments + 2 per library × 2 libraries
        assert len(prog.regions) == 6

    def test_unknown_half_rejected(self, loader):
        with pytest.raises(LoaderError):
            loader.load(helper_image(), "middle")

    def test_footprint_accounts_all_segments(self, loader):
        prog = loader.load(ProgramImage.simple("app", 64, 64), "upper")
        assert prog.footprint() == 128 * 1024


class TestOwnershipRegistry:
    def test_half_of_resolves_loaded_regions(self, loader):
        lower = loader.load(helper_image(), "lower")
        upper = loader.load(ProgramImage.simple("app"), "upper")
        assert loader.half_of(lower.regions[0][0]) == "lower"
        assert loader.half_of(upper.regions[0][0]) == "upper"

    def test_half_of_unknown_address_is_none(self, loader):
        assert loader.half_of(0xDEAD_0000) is None

    def test_runtime_mmap_is_tracked(self, loader):
        addr = loader.mmap_for_half("lower", 1 << 20, tag_leaf="cuda-arena")
        assert loader.half_of(addr) == "lower"
        assert loader.half_of(addr + (1 << 20) - 1) == "lower"

    def test_runtime_mmap_lower_stays_in_window(self, loader):
        addr = loader.mmap_for_half("lower", 1 << 20)
        lo, hi = LOWER_HALF_WINDOW
        assert lo <= addr < hi

    def test_munmap_untracks(self, loader):
        addr = loader.mmap_for_half("upper", 4096)
        loader.munmap_for_half("upper", addr, 4096)
        assert loader.half_of(addr) is None

    def test_partial_munmap_shrinks_range(self, loader):
        addr = loader.mmap_for_half("upper", 3 * 4096)
        loader.munmap_for_half("upper", addr + 4096, 4096)
        assert loader.half_of(addr) == "upper"
        assert loader.half_of(addr + 4096) is None
        assert loader.half_of(addr + 2 * 4096) == "upper"

    def test_owned_bytes(self, loader):
        loader.mmap_for_half("upper", 4096)
        loader.mmap_for_half("upper", 8192)
        assert loader.owned_bytes("upper") == 3 * 4096


class TestCorruptionScenario:
    def test_maps_view_is_ambiguous_but_loader_is_not(self, loader, proc):
        """Adjacent upper/lower allocations merge in /proc but remain
        distinguishable via the loader registry — CRAC's fix for §3.2.2."""
        a = loader.mmap_for_half("upper", 4096)
        # Force a lower allocation adjacent to the upper one (bypassing
        # the window, as a buggy library could with MAP_FIXED).
        proc.vas.mmap(4096, addr=a + 4096, fixed=True, tag="lower:evil")
        loader._track("lower", a + 4096, 4096)
        merged = proc.proc_maps.entries()
        spans = [e for e in merged if e.start <= a < e.end]
        assert spans[0].end - spans[0].start == 8192  # merged: ambiguous
        assert loader.half_of(a) == "upper"
        assert loader.half_of(a + 4096) == "lower"
