"""Tests for SimProcess: clock, fs register costs, personality/ASLR."""

import pytest

from repro.linux import ADDR_NO_RANDOMIZE, SimProcess
from repro.linux.process import SYSCALL_NS, WRFSBASE_NS


class TestClock:
    def test_advance(self):
        p = SimProcess()
        p.advance(100)
        p.advance(50)
        assert p.clock_ns == 150

    def test_advance_negative_rejected(self):
        p = SimProcess()
        with pytest.raises(ValueError):
            p.advance(-1)

    def test_advance_to_is_monotone(self):
        p = SimProcess()
        p.advance_to(1000)
        p.advance_to(500)  # no-op
        assert p.clock_ns == 1000


class TestFsRegister:
    def test_unpatched_fs_switch_costs_a_syscall(self):
        p = SimProcess(fsgsbase=False)
        t = p.threads[0]
        p.set_fs_register(t, 0xAB)
        assert t.fs_base == 0xAB
        assert p.clock_ns == SYSCALL_NS
        assert p.syscall_count == 1

    def test_fsgsbase_fs_switch_is_cheap_and_not_a_syscall(self):
        p = SimProcess(fsgsbase=True)
        t = p.threads[0]
        p.set_fs_register(t, 0xCD)
        assert p.clock_ns == WRFSBASE_NS
        assert p.syscall_count == 0

    def test_fsgsbase_much_cheaper_than_syscall(self):
        assert WRFSBASE_NS * 10 < SYSCALL_NS

    def test_fs_switches_are_counted(self):
        p = SimProcess()
        t = p.threads[0]
        for _ in range(5):
            p.set_fs_register(t, 1)
        assert p.fs_switch_count == 5


class TestPersonality:
    def test_personality_disables_aslr(self):
        p = SimProcess(aslr=True)
        assert p.vas.aslr
        p.personality(ADDR_NO_RANDOMIZE)
        assert not p.vas.aslr

    def test_personality_zero_reenables(self):
        p = SimProcess(aslr=True)
        p.personality(ADDR_NO_RANDOMIZE)
        p.personality(0)
        assert p.vas.aslr


class TestLifecycle:
    def test_unique_pids(self):
        assert SimProcess().pid != SimProcess().pid

    def test_kill(self):
        p = SimProcess()
        p.kill()
        assert not p.alive

    def test_spawn_thread_unique_tids(self):
        p = SimProcess()
        t2 = p.spawn_thread()
        assert t2.tid != p.threads[0].tid
