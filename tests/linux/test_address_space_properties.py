"""Property-based tests (hypothesis) for address-space invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressSpaceError, SegmentationFault
from repro.linux import PAGE_SIZE, VirtualAddressSpace

# A compact op language: each op is (kind, page_offset, num_pages).
ops = st.lists(
    st.tuples(
        st.sampled_from(["mmap", "mmap_fixed", "munmap", "write", "read"]),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=1, max_value=8),
    ),
    max_size=40,
)

BASE = 0x4000_0000


def run_ops(vas, op_list):
    """Drive the VAS with a random op sequence, ignoring expected faults."""
    for kind, pg, npages in op_list:
        addr = BASE + pg * PAGE_SIZE
        size = npages * PAGE_SIZE
        try:
            if kind == "mmap":
                vas.mmap(size)
            elif kind == "mmap_fixed":
                vas.mmap(size, addr=addr, fixed=True, tag=f"t{pg}")
            elif kind == "munmap":
                vas.munmap(addr, size)
            elif kind == "write":
                vas.write(addr, b"x" * min(size, 64))
            elif kind == "read":
                vas.read(addr, min(size, 64))
        except (SegmentationFault, AddressSpaceError):
            pass


@settings(max_examples=200)
@given(ops)
def test_regions_never_overlap(op_list):
    vas = VirtualAddressSpace(aslr=False, seed=1)
    run_ops(vas, op_list)
    regions = vas.regions()
    for a, b in zip(regions, regions[1:]):
        assert a.end <= b.start


@settings(max_examples=200)
@given(ops)
def test_regions_always_page_aligned(op_list):
    vas = VirtualAddressSpace(aslr=False, seed=2)
    run_ops(vas, op_list)
    for r in vas.regions():
        assert r.start % PAGE_SIZE == 0
        assert r.size % PAGE_SIZE == 0
        assert r.size > 0


@settings(max_examples=200)
@given(ops)
def test_find_agrees_with_region_list(op_list):
    vas = VirtualAddressSpace(aslr=False, seed=3)
    run_ops(vas, op_list)
    for r in vas.regions():
        assert vas.find(r.start) is r
        assert vas.find(r.end - 1) is r
        assert vas.find(r.end) is not r


@settings(max_examples=100)
@given(
    st.integers(min_value=0, max_value=30),
    st.binary(min_size=1, max_size=3 * PAGE_SIZE),
)
def test_write_read_roundtrip(offset_pages, data):
    vas = VirtualAddressSpace(aslr=False, seed=4)
    addr = vas.mmap(40 * PAGE_SIZE)
    where = addr + offset_pages * PAGE_SIZE + 13
    vas.write(where, data)
    assert vas.read(where, len(data)) == data


@settings(max_examples=100)
@given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=15))
def test_split_preserves_content(total_pages, cut_page):
    if cut_page >= total_pages:
        cut_page = max(1, total_pages - 1)
        if cut_page == 0 or total_pages < 2:
            return
    vas = VirtualAddressSpace(aslr=False, seed=5)
    addr = vas.mmap(total_pages * PAGE_SIZE)
    payload = bytes((i % 251 for i in range(total_pages * PAGE_SIZE)))
    vas.write(addr, payload)
    # Split by munmapping nothing: use mprotect to force a split boundary.
    vas.mprotect(addr, cut_page * PAGE_SIZE, "r--")
    assert vas.read(addr, total_pages * PAGE_SIZE) == payload


@settings(max_examples=100)
@given(ops)
def test_total_mapped_equals_sum_of_regions(op_list):
    vas = VirtualAddressSpace(aslr=False, seed=6)
    run_ops(vas, op_list)
    assert vas.total_mapped == sum(r.size for r in vas.regions())
