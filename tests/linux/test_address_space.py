"""Unit tests for the simulated virtual address space."""

import pytest

from repro.errors import AddressSpaceError, SegmentationFault
from repro.linux import PAGE_SIZE, VirtualAddressSpace


@pytest.fixture
def vas():
    return VirtualAddressSpace(aslr=False, seed=7)


class TestMmapPlacement:
    def test_mmap_returns_page_aligned_address(self, vas):
        addr = vas.mmap(100)
        assert addr % PAGE_SIZE == 0

    def test_mmap_rounds_size_up_to_page(self, vas):
        addr = vas.mmap(1)
        region = vas.find(addr)
        assert region.size == PAGE_SIZE

    def test_mmap_zero_bytes_rejected(self, vas):
        with pytest.raises(AddressSpaceError):
            vas.mmap(0)

    def test_two_mmaps_do_not_overlap(self, vas):
        a = vas.mmap(10 * PAGE_SIZE)
        b = vas.mmap(10 * PAGE_SIZE)
        assert a + 10 * PAGE_SIZE <= b or b + 10 * PAGE_SIZE <= a

    def test_deterministic_placement_without_aslr(self):
        seq1 = []
        seq2 = []
        for seq in (seq1, seq2):
            v = VirtualAddressSpace(aslr=False, seed=99)
            for _ in range(5):
                seq.append(v.mmap(3 * PAGE_SIZE))
        assert seq1 == seq2

    def test_aslr_randomizes_placement(self):
        v1 = VirtualAddressSpace(aslr=True, seed=1)
        v2 = VirtualAddressSpace(aslr=True, seed=2)
        a1 = [v1.mmap(PAGE_SIZE) for _ in range(4)]
        a2 = [v2.mmap(PAGE_SIZE) for _ in range(4)]
        assert a1 != a2

    def test_window_constrains_placement(self, vas):
        window = (0x1000_0000, 0x2000_0000)
        addr = vas.mmap(PAGE_SIZE, window=window)
        assert window[0] <= addr < window[1]

    def test_hint_respected_when_free(self, vas):
        hint = 0x7000_0010_0000
        addr = vas.mmap(PAGE_SIZE, addr=hint)
        assert addr == hint

    def test_hint_ignored_when_occupied(self, vas):
        hint = 0x7000_0010_0000
        vas.mmap(PAGE_SIZE, addr=hint, fixed=True)
        addr = vas.mmap(PAGE_SIZE, addr=hint)
        assert addr != hint


class TestMapFixed:
    def test_fixed_places_exactly(self, vas):
        addr = vas.mmap(2 * PAGE_SIZE, addr=0x5000_0000, fixed=True)
        assert addr == 0x5000_0000

    def test_fixed_requires_aligned_address(self, vas):
        with pytest.raises(AddressSpaceError):
            vas.mmap(PAGE_SIZE, addr=0x5000_0001, fixed=True)

    def test_fixed_silently_clobbers_existing_mapping(self, vas):
        victim = vas.mmap(4 * PAGE_SIZE, addr=0x5000_0000, fixed=True, tag="upper:data")
        vas.write(victim, b"precious")
        vas.mmap(4 * PAGE_SIZE, addr=0x5000_0000, fixed=True, tag="lower:arena")
        # No exception — but the data is gone and the event is recorded.
        assert vas.read(victim, 8) == b"\0" * 8
        assert len(vas.clobber_events) == 1
        ev = vas.clobber_events[0]
        assert ev.victim_tag == "upper:data"
        assert ev.aggressor_tag == "lower:arena"
        assert ev.bytes_lost > 0

    def test_fixed_clobber_of_untouched_pages_not_recorded(self, vas):
        vas.mmap(PAGE_SIZE, addr=0x5000_0000, fixed=True, tag="upper:data")
        vas.mmap(PAGE_SIZE, addr=0x5000_0000, fixed=True, tag="lower:arena")
        assert vas.clobber_events == []

    def test_fixed_partial_overlap_splits_victim(self, vas):
        vas.mmap(4 * PAGE_SIZE, addr=0x5000_0000, fixed=True, tag="a")
        vas.mmap(2 * PAGE_SIZE, addr=0x5000_1000, fixed=True, tag="b")
        tags = [r.tag for r in vas.regions()]
        assert tags.count("a") == 2  # head and tail survive
        assert tags.count("b") == 1


class TestMunmap:
    def test_munmap_removes_mapping(self, vas):
        addr = vas.mmap(PAGE_SIZE)
        vas.munmap(addr, PAGE_SIZE)
        assert vas.find(addr) is None

    def test_munmap_middle_splits_region(self, vas):
        addr = vas.mmap(3 * PAGE_SIZE)
        vas.munmap(addr + PAGE_SIZE, PAGE_SIZE)
        assert vas.find(addr) is not None
        assert vas.find(addr + PAGE_SIZE) is None
        assert vas.find(addr + 2 * PAGE_SIZE) is not None

    def test_munmap_preserves_content_of_surviving_pages(self, vas):
        addr = vas.mmap(3 * PAGE_SIZE)
        vas.write(addr, b"head")
        vas.write(addr + 2 * PAGE_SIZE, b"tail")
        vas.munmap(addr + PAGE_SIZE, PAGE_SIZE)
        assert vas.read(addr, 4) == b"head"
        assert vas.read(addr + 2 * PAGE_SIZE, 4) == b"tail"

    def test_munmap_unaligned_rejected(self, vas):
        with pytest.raises(AddressSpaceError):
            vas.munmap(123, PAGE_SIZE)


class TestMprotect:
    def test_mprotect_changes_perms(self, vas):
        addr = vas.mmap(2 * PAGE_SIZE, perms="rw-")
        vas.mprotect(addr, PAGE_SIZE, "r--")
        assert vas.find(addr).perms == "r--"
        assert vas.find(addr + PAGE_SIZE).perms == "rw-"

    def test_mprotect_unmapped_faults(self, vas):
        with pytest.raises(SegmentationFault):
            vas.mprotect(0x4000_0000, PAGE_SIZE, "r--")

    def test_write_to_readonly_faults(self, vas):
        addr = vas.mmap(PAGE_SIZE, perms="r--")
        with pytest.raises(SegmentationFault):
            vas.write(addr, b"x")


class TestDataAccess:
    def test_roundtrip(self, vas):
        addr = vas.mmap(PAGE_SIZE)
        vas.write(addr + 17, b"hello world")
        assert vas.read(addr + 17, 11) == b"hello world"

    def test_unwritten_pages_read_as_zero(self, vas):
        addr = vas.mmap(2 * PAGE_SIZE)
        assert vas.read(addr, 16) == b"\0" * 16

    def test_write_spanning_pages(self, vas):
        addr = vas.mmap(2 * PAGE_SIZE)
        data = bytes(range(200)) * 50  # 10000 bytes > 2 pages? no, fits in 2 pages
        vas.write(addr + PAGE_SIZE - 100, data[:200])
        assert vas.read(addr + PAGE_SIZE - 100, 200) == data[:200]

    def test_write_spanning_adjacent_regions(self, vas):
        a = vas.mmap(PAGE_SIZE, addr=0x6000_0000, fixed=True)
        vas.mmap(PAGE_SIZE, addr=0x6000_1000, fixed=True)
        vas.write(a + PAGE_SIZE - 4, b"abcdefgh")
        assert vas.read(a + PAGE_SIZE - 4, 8) == b"abcdefgh"

    def test_read_unmapped_faults(self, vas):
        with pytest.raises(SegmentationFault):
            vas.read(0xDEAD_BEEF_000, 4)

    def test_write_unmapped_faults(self, vas):
        with pytest.raises(SegmentationFault):
            vas.write(0xDEAD_BEEF_000, b"x")

    def test_sparse_backing_only_counts_written_pages(self, vas):
        addr = vas.mmap(1024 * PAGE_SIZE)  # 4 MB virtual
        region = vas.find(addr)
        assert region.backed_bytes == 0
        vas.write(addr, b"x")
        assert region.backed_bytes == PAGE_SIZE

    def test_total_mapped_accounts_virtual_size(self, vas):
        before = vas.total_mapped
        vas.mmap(1 << 30)  # 1 GB virtual, zero real memory
        assert vas.total_mapped - before == 1 << 30


class TestSnapshots:
    def test_pages_snapshot_roundtrip(self, vas):
        addr = vas.mmap(4 * PAGE_SIZE)
        vas.write(addr + 5000, b"persisted")
        region = vas.find(addr)
        snap = region.pages_snapshot()
        vas.write(addr + 5000, b"XXXXXXXXX")
        region.load_pages(snap)
        assert vas.read(addr + 5000, 9) == b"persisted"
