"""Repository-level hygiene: experiment determinism and resource leaks."""

import pytest

from repro.apps import Hpgmg, Hypre, Lulesh, SimpleStreams, UnifiedMemoryStreams
from repro.apps.base import AppContext
from repro.apps.rodinia import RODINIA_SUITE
from repro.core.halves import SplitProcess
from repro.cuda.interface import NativeBackend
from repro.harness import run_app

ALL_APPS = list(RODINIA_SUITE) + [
    SimpleStreams, UnifiedMemoryStreams, Lulesh, Hpgmg, Hypre,
]


class TestExperimentDeterminism:
    def test_fig2_rows_reproducible(self):
        """Running an experiment twice yields identical numbers — no
        hidden global state leaks between runs."""
        from repro.harness.experiments import fig2_rodinia_runtime

        a = fig2_rodinia_runtime(0.01, noise=False)
        b = fig2_rodinia_runtime(0.01, noise=False)
        assert [(r.label, r.values) for r in a] == [
            (r.label, r.values) for r in b
        ]

    def test_table3_reproducible(self):
        from repro.harness.experiments import table3_ipc_comparison

        a = table3_ipc_comparison(0.005)
        b = table3_ipc_comparison(0.005)
        assert [(r.label, r.values) for r in a] == [
            (r.label, r.values) for r in b
        ]


class TestNoLeaks:
    @pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda c: c.__name__)
    def test_apps_free_all_cuda_resources(self, app_cls):
        """Every workload frees its allocations, streams, and fat binary
        — the teardown discipline real CUDA apps need at process exit."""
        split = SplitProcess(seed=171)
        backend = NativeBackend(split.runtime)
        ctx = AppContext(backend=backend, upper_mmap=split.upper_mmap)
        app_cls(scale=0.01).run(ctx)
        runtime = split.runtime
        assert runtime.active_allocations() == []
        assert list(runtime.streams) == [0]  # only the default stream
        assert runtime._registered_kernels.issubset(set())  # all unregistered
