"""Tests for the §6 MPI+CUDA proof of principle."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.mpi import MpiJacobi, MpiWorld


class TestMpiWorld:
    def test_send_recv_roundtrip(self):
        world = MpiWorld(2)
        data = np.arange(8, dtype=np.float64)
        world.send(0, 1, data, tag=7)
        got = world.recv(1, 0, tag=7)
        np.testing.assert_array_equal(got, data)

    def test_send_is_copied(self):
        world = MpiWorld(2)
        data = np.zeros(4)
        world.send(0, 1, data)
        data[:] = 99  # mutation after send must not affect the message
        np.testing.assert_array_equal(world.recv(1, 0), np.zeros(4))

    def test_recv_waits_for_transfer(self):
        world = MpiWorld(2)
        big = np.zeros(1 << 20)  # 8 MB → ~0.9 ms at 9 GB/s
        world.send(0, 1, big)
        before = world.ranks[1].clock_ns
        world.recv(1, 0)
        assert world.ranks[1].clock_ns - before > 500_000

    def test_recv_missing_message_deadlocks(self):
        world = MpiWorld(2)
        with pytest.raises(ReproError, match="deadlock"):
            world.recv(0, 1)

    def test_barrier_synchronizes_clocks(self):
        world = MpiWorld(3)
        world.ranks[2].session.process.advance(5_000_000)
        world.barrier()
        clocks = {r.clock_ns for r in world.ranks}
        assert len(clocks) == 1

    def test_allreduce_sum(self):
        world = MpiWorld(4)
        assert world.allreduce_sum([1.0, 2.0, 3.0, 4.0]) == 10.0

    def test_allreduce_wrong_arity(self):
        world = MpiWorld(2)
        with pytest.raises(ValueError):
            world.allreduce_sum([1.0])

    def test_bcast_delivers_copies(self):
        world = MpiWorld(3)
        data = np.arange(5, dtype=np.float64)
        copies = world.bcast(0, data)
        assert len(copies) == 3
        data[:] = -1
        for c in copies:
            np.testing.assert_array_equal(c, np.arange(5, dtype=np.float64))

    def test_reduce_max(self):
        world = MpiWorld(4)
        assert world.reduce_max([1.0, 9.0, 3.0, 2.0]) == 9.0

    def test_gather(self):
        world = MpiWorld(2)
        out = world.gather(0, [np.zeros(3), np.ones(3)])
        np.testing.assert_array_equal(out[1], np.ones(3))

    def test_gather_wrong_arity(self):
        world = MpiWorld(2)
        with pytest.raises(ValueError):
            world.gather(0, [np.zeros(3)])

    def test_bcast_costs_scale_with_size(self):
        world = MpiWorld(2)
        t0 = world.ranks[0].clock_ns
        world.bcast(0, np.zeros(1 << 20))  # 8 MB
        assert world.ranks[0].clock_ns - t0 > 500_000


class TestCoordinatedCheckpoint:
    def test_checkpoint_all_returns_one_image_per_rank(self):
        world = MpiWorld(3)
        images = world.checkpoint_all()
        assert len(images) == 3
        assert len({img.pid for img in images}) == 3

    def test_restart_all_requires_matching_images(self):
        world = MpiWorld(2)
        images = world.checkpoint_all()
        with pytest.raises(ValueError):
            world.restart_all(images[:1])


class TestMpiJacobi:
    def test_converges(self):
        world = MpiWorld(2)
        jacobi = MpiJacobi(world, rows_per_rank=8, cols=16, iterations=30)
        r0 = jacobi.residual()
        jacobi.run()
        assert jacobi.residual() < r0

    def test_deterministic(self):
        def run():
            world = MpiWorld(2)
            return MpiJacobi(world, iterations=10, seed=4).run()

        assert run() == run()

    def test_rank_count_changes_nothing_about_global_solution_shape(self):
        """Same global field decomposed over 1 vs 2 ranks converges to
        comparable residuals (halo exchange works)."""
        w1 = MpiWorld(1)
        j1 = MpiJacobi(w1, rows_per_rank=16, cols=16, iterations=20, seed=9)
        j1.run()
        w2 = MpiWorld(2)
        j2 = MpiJacobi(w2, rows_per_rank=8, cols=16, iterations=20, seed=9)
        j2.run()
        # Not bit-identical (different decomposition), but both near
        # convergence on a smooth problem.
        assert j2.residual() < 1.5 * j1.residual() + 1.0

    def test_coordinated_checkpoint_restart_transparent(self):
        """The §6 proof of principle: checkpoint the whole MPI+CUDA job
        mid-run, kill every rank, restart, finish — identical output."""
        reference = MpiJacobi(MpiWorld(3), iterations=20, seed=2).run()
        world = MpiWorld(3)
        survived = MpiJacobi(world, iterations=20, seed=2).run(
            checkpoint_at_iter=10
        )
        assert survived == reference
        assert all(len(r.session.restarts) == 1 for r in world.ranks)

    def test_checkpoint_without_restart_also_transparent(self):
        reference = MpiJacobi(MpiWorld(2), iterations=12, seed=3).run()
        got = MpiJacobi(MpiWorld(2), iterations=12, seed=3).run(
            checkpoint_at_iter=6, restart=False
        )
        assert got == reference
