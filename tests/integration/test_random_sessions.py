"""Randomized differential testing of the whole CRAC stack.

Hypothesis drives a random sequence of CUDA operations — allocations of
every family, frees, kernels writing known patterns, stream creation,
memsets — interleaved with random checkpoint+kill+restart cycles. The
same operation sequence runs on a *native* shadow machine; at the end,
every live buffer's contents must match byte-for-byte, and the CRAC
session must hold exactly the same live allocation set.

This is the strongest statement of the paper's transparency claim the
simulation can make: no operation order, allocation pattern, or
checkpoint placement may change observable behaviour.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CracSession
from repro.core.halves import SplitProcess
from repro.cuda.api import FatBinary
from repro.cuda.interface import NativeBackend
from repro.gpu.uvm import UVM_PAGE

FB = FatBinary("rnd.fatbin", ("fill",))

op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("malloc"), st.integers(64, 1 << 16)),
        st.tuples(st.just("malloc_managed"), st.integers(64, 2 * UVM_PAGE)),
        st.tuples(st.just("malloc_host"), st.integers(64, 4096)),
        st.tuples(st.just("host_alloc"), st.integers(64, 4096)),
        st.tuples(st.just("free"), st.integers(0, 40)),
        st.tuples(st.just("fill"), st.integers(0, 255)),
        st.tuples(st.just("memset"), st.integers(0, 255)),
        st.tuples(st.just("stream"), st.just(0)),
        st.tuples(st.just("checkpoint"), st.just(0)),  # CRAC only
    ),
    min_size=3,
    max_size=35,
)


class Driver:
    """Executes the op language against one backend."""

    def __init__(self, backend, session=None):
        self.backend = backend
        self.session = session
        self.live = []  # (addr, nbytes, family)
        self.streams = []
        self.fill_counter = 0

    def execute(self, ops):
        b = self.backend
        for kind, arg in ops:
            if kind in ("malloc", "malloc_managed", "malloc_host", "host_alloc"):
                addr = getattr(b, kind)(arg)
                self.live.append((addr, arg, kind))
            elif kind == "free":
                if not self.live:
                    continue
                addr, _, family = self.live.pop(arg % len(self.live))
                if family in ("malloc", "malloc_managed"):
                    b.free(addr)
                else:
                    b.free_host(addr)
            elif kind == "fill":
                if not self.live:
                    continue
                addr, nbytes, family = self.live[arg % len(self.live)]
                self.fill_counter += 1
                value = (arg + self.fill_counter) % 251

                def fn(addr=addr, nbytes=nbytes, value=value):
                    view = b.runtime.buffers[addr].contents.view(0, nbytes)
                    view[:] = value

                stream = self.streams[arg % len(self.streams)] if self.streams else None
                b.launch("fill", fn, stream=stream, duration_ns=10_000)
            elif kind == "memset":
                if not self.live:
                    continue
                addr, nbytes, _ = self.live[arg % len(self.live)]
                b.memset(addr, arg, nbytes)
            elif kind == "stream":
                self.streams.append(b.stream_create())
            elif kind == "checkpoint" and self.session is not None:
                b.device_synchronize()
                image = self.session.checkpoint()
                self.session.kill()
                self.session.restart(image)
        b.device_synchronize()

    def snapshot(self):
        out = {}
        for addr, nbytes, family in self.live:
            out[addr] = self.backend.runtime.buffers[addr].contents.read_bytes(
                0, nbytes
            )
        return out


@settings(max_examples=40, deadline=None)
@given(op_strategy)
def test_crac_session_matches_native_shadow(ops):
    # Native shadow run.
    shadow_split = SplitProcess(seed=101)
    shadow = Driver(NativeBackend(shadow_split.runtime))
    shadow.backend.register_app_binary(FB)
    shadow.execute(ops)

    # CRAC run with checkpoints enabled.
    session = CracSession(seed=101)
    crac = Driver(session.backend, session=session)
    crac.backend.register_app_binary(FB)
    crac.execute(ops)

    # Identical live sets (the deterministic allocators agree)...
    assert [x[:2] for x in crac.live] == [x[:2] for x in shadow.live]
    # ...and identical contents, byte for byte.
    assert crac.snapshot() == shadow.snapshot()


@settings(max_examples=25, deadline=None)
@given(op_strategy)
def test_crac_session_survives_any_checkpoint_placement(ops):
    """Force a checkpoint after *every* op; state must stay coherent."""
    session = CracSession(seed=103)
    driver = Driver(session.backend, session=session)
    driver.backend.register_app_binary(FB)
    interleaved = []
    for op in ops:
        if op[0] != "checkpoint":
            interleaved.append(op)
            interleaved.append(("checkpoint", 0))
    driver.execute(interleaved)
    # Every live buffer is still addressable and sized correctly.
    for addr, nbytes, _ in driver.live:
        assert len(driver.backend.runtime.buffers[addr].contents.read_bytes(0, nbytes)) == nbytes
