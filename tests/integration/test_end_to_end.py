"""End-to-end integration: every app × every dispatcher, checkpoint
chains, and the combined transparency matrix."""

import pytest

from repro.apps import Hpgmg, Hypre, Lulesh, SimpleStreams, UnifiedMemoryStreams
from repro.apps.rodinia import RODINIA_SUITE
from repro.harness import Machine, run_app

SCALE = 0.01
ALL_APPS = list(RODINIA_SUITE) + [
    SimpleStreams, UnifiedMemoryStreams, Lulesh, Hpgmg, Hypre,
]


class TestCrossModeMatrix:
    """Output must be identical under every dispatcher that supports
    the app's feature set (UVM apps can't run under CRCUDA, and the
    UVM+streams apps violate CRUM's restrictions by design)."""

    @pytest.mark.parametrize("app_cls", ALL_APPS, ids=lambda c: c.__name__)
    def test_native_vs_crac_digest(self, app_cls):
        n = run_app(app_cls(scale=SCALE), mode="native", noise=False)
        c = run_app(app_cls(scale=SCALE), mode="crac", noise=False)
        assert n.digest == c.digest

    @pytest.mark.parametrize(
        "app_cls", RODINIA_SUITE, ids=lambda c: c.__name__
    )
    def test_rodinia_under_all_proxies(self, app_cls):
        """Rodinia uses no UVM, so even CRCUDA/CRUM run it correctly —
        just slower."""
        digests = set()
        for mode in ("native", "crum", "proxy-cma", "crcuda"):
            digests.add(
                run_app(app_cls(scale=SCALE), mode=mode, noise=False).digest
            )
        assert len(digests) == 1


class TestCheckpointChains:
    @pytest.mark.parametrize("app_cls", [RODINIA_SUITE[5], Lulesh, Hpgmg],
                             ids=lambda c: c.__name__)
    def test_two_checkpoints_in_one_run(self, app_cls):
        """Checkpoint → restart → checkpoint → restart, mid-run."""
        from repro.core.session import CracSession  # noqa: F401 (doc aid)

        n = run_app(app_cls(scale=SCALE), mode="native", noise=False)

        # run_app fires one checkpoint; chain two via two progress points
        # by re-entering through the checkpoint_cb manually.
        fired = []

        def run_with_two():
            from repro.apps.base import AppContext
            from repro.core import CracSession

            session = CracSession(seed=0)
            app = app_cls(scale=SCALE)

            def cb(progress):
                if len(fired) == 0 and progress >= 0.3:
                    image = session.checkpoint()
                    session.kill()
                    session.restart(image)
                    fired.append(progress)
                elif len(fired) == 1 and progress >= 0.7:
                    image = session.checkpoint()
                    session.kill()
                    session.restart(image)
                    fired.append(progress)

            ctx = AppContext(
                backend=session.backend,
                upper_mmap=lambda size: session.split.upper_mmap(size),
                checkpoint_cb=cb,
            )
            return app.run(ctx)

        result = run_with_two()
        assert len(fired) == 2
        assert result.digest == n.digest


class TestDeviceVariants:
    def test_k600_produces_same_results_as_v100(self):
        """Timing differs; content must not."""
        app = RODINIA_SUITE[0]
        v = run_app(app(scale=SCALE), Machine.v100(), noise=False)
        k = run_app(app(scale=SCALE), Machine.k600(), noise=False)
        assert v.digest == k.digest

    def test_checkpoint_restart_on_k600(self):
        app = RODINIA_SUITE[0]
        n = run_app(app(scale=SCALE), Machine.k600(), noise=False)
        c = run_app(
            app(scale=SCALE), Machine.k600(), mode="crac",
            checkpoint_at=0.5, noise=False,
        )
        assert c.digest == n.digest
