"""Regression: restore onto a new node must rebaseline stale liveness state.

Two bugs this file pins down:

- An application-held stream handle crossing a restore carries the dead
  process's timeline: a poison flag from a fault that hit *after* the
  checkpoint cut, or a ``ready_ns`` inflated by a hung kernel. Without
  the restart-time rebaseline, the first post-restore sync either trips
  the watchdog on a fault that no longer exists or absorbs the inflated
  baseline into the restored clock.
- The cluster heartbeat monitor keeps per-rank missed-beat counters
  across a migration; pre-migration misses must not survive the move or
  a freshly restored session starts life a beat away from being
  declared dead.
"""

import numpy as np

from repro.core.session import CracSession
from repro.cuda.api import FatBinary
from repro.cuda.errors import CudaErrorCode, cuda_error
from repro.dmtcp.coordinator import HeartbeatMonitor
from repro.dmtcp.store import CheckpointStore

FB = FatBinary("rebase.fatbin", ("mutate",))
N = 64
NBYTES = 4 * N


def make_session(seed=7):
    session = CracSession(gpu="V100", seed=seed)
    session.backend.register_app_binary(FB)
    ptr = session.backend.malloc(NBYTES)
    session.backend.memcpy(ptr, np.arange(N, dtype=np.float32), NBYTES, "h2d")
    return session, ptr


def bump(session, ptr, stream=None):
    def fn():
        view = session.backend.device_view(ptr, NBYTES, np.float32)
        np.add(view, 1.0, out=view)

    session.backend.launch("mutate", fn, stream=stream, duration_ns=50_000.0)


class TestStreamRebaseline:
    def _poison_and_restart(self, *, gpu_dst):
        store = CheckpointStore()
        session, ptr = make_session()
        stream = session.backend.stream_create()
        bump(session, ptr, stream=stream)
        session.backend.stream_synchronize(stream)
        session.checkpoint(store=store)
        # Post-cut staleness on the held handle: a fault that hit after
        # the cut and a ready_ns inflated by a hung kernel. Neither
        # describes restored work — the checkpoint drained the stream.
        stream.fault = cuda_error(
            CudaErrorCode.ECC_UNCORRECTABLE, "post-cut fault"
        )
        stream.ready_ns = session.process.clock_ns + 1e12
        session.kill()
        session.gpu = gpu_dst
        session.restart_latest(store, allow_heterogeneous=gpu_dst != "V100")
        return session, ptr, stream

    def test_restart_clears_stale_fault_and_clamps_ready_ns(self):
        session, ptr, stream = self._poison_and_restart(gpu_dst="V100")
        assert stream.fault is None
        assert stream.ready_ns <= session.process.clock_ns
        session.kill()

    def test_first_sync_after_restore_is_not_a_spurious_trip(self):
        session, ptr, stream = self._poison_and_restart(gpu_dst="K600")
        t0 = session.process.clock_ns
        bump(session, ptr, stream=stream)
        session.backend.stream_synchronize(stream)
        # The sync waits out one 50 µs kernel — not the 1000 s phantom
        # baseline the dead process left on the handle.
        assert session.process.clock_ns - t0 < 1e9
        out = np.empty(N, dtype=np.float32)
        session.backend.memcpy(out, ptr, NBYTES, "d2h")
        assert np.array_equal(out, np.arange(N, dtype=np.float32) + 2.0)
        session.kill()

    def test_guarded_sync_after_migration_does_not_trip_the_watchdog(self):
        store = CheckpointStore()
        session, ptr = make_session()
        domain = session.enable_fault_domain(store)
        stream = session.backend.stream_create()
        bump(session, ptr, stream=stream)
        session.backend.stream_synchronize(stream)
        domain.checkpoint()
        stream.fault = cuda_error(
            CudaErrorCode.ECC_UNCORRECTABLE, "post-cut fault"
        )
        stream.ready_ns = session.process.clock_ns + 1e12
        session.kill()
        session.gpu = "K600"
        session.restart_latest(store, allow_heterogeneous=True)
        session.backend.stream_synchronize(stream)
        assert domain.report.watchdog_trips == 0
        assert domain.report.stream_resets == 0
        session.kill()


class TestHeartbeatRebaseline:
    def test_rebaseline_forgets_premigration_misses(self):
        monitor = HeartbeatMonitor(2, max_missed=3)
        monitor.beat(0, arrived=False)
        monitor.beat(0, arrived=False)
        assert monitor.health[0].missed == 2
        monitor.rebaseline()
        assert monitor.health[0].missed == 0
        assert not monitor.health[0].dead
        # One more miss after the move must not be fatal.
        monitor.beat(0, arrived=False)
        assert monitor.dead_ranks() == []

    def test_rebaseline_without_revive_keeps_dead_verdicts(self):
        monitor = HeartbeatMonitor(2, max_missed=2)
        monitor.beat(1, arrived=False)
        monitor.beat(1, arrived=False)
        assert monitor.dead_ranks() == [1]
        monitor.rebaseline()
        assert monitor.dead_ranks() == [1]
        monitor.rebaseline(revive=True)
        assert monitor.dead_ranks() == []
        assert monitor.health[1].missed == 0
