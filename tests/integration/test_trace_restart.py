"""Trace/profile continuity across every recovery rung.

The instrument must report one continuous logical window no matter how
the run was healed:

- a plain checkpoint → kill → ``restart_latest`` opens a new splice
  segment but keeps every pre-cut span (and the profiler folds its call
  window forward instead of raising or under-counting);
- rung 2 (watchdog → stream reset) clamps the in-flight span to the
  reset instant (``aborted:``), drops queued spans, and records the
  fault domain's replays as fresh ``replay:`` spans — same segment, the
  device survived;
- rung 3 (ECC → device reset + restore) goes through restart: the old
  device generation's timeline is archived, tracing re-enabled on the
  fresh devices, and the report aggregates both segments.
"""

import numpy as np
import pytest

from repro.core.session import CracSession
from repro.cuda.api import FatBinary
from repro.dmtcp.store import CheckpointStore
from repro.harness.fault_injection import FaultInjector, FaultSpec

FB = FatBinary("tracing.fatbin", ("mutate",))
N = 64
NBYTES = 4 * N


def make_traced(injector=None, *, seed=7, store=None, fault_domain=False):
    """Session with tracer + profiler attached and one device buffer."""
    session = CracSession(seed=seed, fault_injector=injector)
    if fault_domain:
        session.enable_fault_domain(store if store is not None else CheckpointStore())
    tracer = session.enable_trace()
    profiler = session.enable_profiler()
    profiler.enable_timeline()
    profiler.start()
    session.backend.register_app_binary(FB)
    ptr = session.backend.malloc(NBYTES)
    x = np.arange(N, dtype=np.float32)
    session.backend.memcpy(ptr, x, NBYTES, "h2d")
    return session, tracer, profiler, ptr


def bump(session, ptr, duration_ns=50_000.0):
    """Launch one kernel that increments the buffer in place."""

    def fn():
        view = session.backend.device_view(ptr, NBYTES, np.float32)
        np.add(view, 1.0, out=view)

    session.backend.launch("mutate", fn, duration_ns=duration_ns)


class TestPlainRestartSplice:
    def _run_across_cut(self):
        session, tracer, profiler, ptr = make_traced()
        store = CheckpointStore()
        bump(session, ptr)
        session.backend.device_synchronize()
        session.checkpoint(store=store)
        session.kill()
        session.restart_latest(store)
        bump(session, ptr)
        session.backend.device_synchronize()
        return session, tracer, profiler, ptr

    def test_tracer_opens_new_segment_and_keeps_old_spans(self):
        session, tracer, profiler, ptr = self._run_across_cut()
        assert tracer.segment == 1
        kernel_segments = sorted(
            {s.segment for s in tracer.spans if s.cat == "kernel"}
        )
        assert kernel_segments == [0, 1]
        restart_spans = [s for s in tracer.spans if s.name == "restart"]
        assert len(restart_spans) == 1
        assert restart_spans[0].segment == 1
        marks = [i for i in tracer.instants if i.name == "segment:restart"]
        assert len(marks) == 1

    def test_logical_timeline_monotone_across_the_cut(self):
        _, tracer, _, _ = self._run_across_cut()
        pre = [s for s in tracer.spans if s.segment == 0]
        post = [s for s in tracer.spans if s.segment == 1]
        assert pre and post
        assert max(s.end_ns for s in pre) <= min(
            s.start_ns for s in post if s.cat == "api"
        ) + 1  # the restart span itself straddles the cut boundary

    def test_checkpoint_stage_spans_recorded(self):
        _, tracer, _, _ = self._run_across_cut()
        stages = {s.name for s in tracer.spans if s.cat == "ckpt"}
        assert {"quiesce", "drain", "stage", "save-regions", "write"} <= stages
        commits = [i for i in tracer.instants if i.name == "commit"]
        assert commits

    def test_profiler_window_continuous_and_timeline_spliced(self):
        session, _, profiler, ptr = self._run_across_cut()
        rep = profiler.report()  # must not raise despite the cut
        assert rep.restarts == 1
        assert rep.kernel_launches >= 2
        timeline = profiler.timeline_report()
        assert timeline.segments == 2
        # Splice-aware span: per-segment sum, restart downtime excluded.
        assert timeline.span_ns <= session.process.clock_ns
        assert timeline.kernel_busy_ns >= 2 * 50_000.0
        out = np.empty(N, dtype=np.float32)
        session.backend.memcpy(out, ptr, NBYTES, "d2h")
        np.testing.assert_array_equal(
            out, np.arange(N, dtype=np.float32) + 2.0
        )


class TestRung2StreamReset:
    def test_stream_reset_clamps_and_replays_in_same_segment(self):
        inj = FaultInjector([FaultSpec("kernel-hang", at_count=1)], seed=3)
        session, tracer, profiler, ptr = make_traced(inj, fault_domain=True)
        # Intended duration > 0 s so the watchdog-bounded reset instant
        # lands strictly inside the inflated span (hang adds 30 s; the
        # watchdog fires ~30 s in — a microsecond kernel would already
        # have "finished" on the virtual timeline by then).
        bump(session, ptr, duration_ns=5e9)  # poisons the stream
        session.backend.device_synchronize()  # watchdog fires, rung 2
        names = [s.name for s in tracer.spans if s.cat == "kernel"]
        assert "aborted:mutate" in names
        assert "replay:mutate" in names
        assert tracer.segment == 0, "a stream reset is not a restart cut"
        rungs = [s for s in tracer.spans if s.cat == "recovery"]
        assert any(s.name == "stream-reset" for s in rungs)
        # Device survived: the profiler timeline is one segment and the
        # clamped event is in it.
        timeline = profiler.timeline_report()
        assert timeline.segments == 1
        assert any(k.startswith("aborted:") for k in timeline.kernels)
        profiler.report()  # window intact, no backwards counter

    def test_aborted_span_clamped_to_reset_instant(self):
        inj = FaultInjector([FaultSpec("kernel-hang", at_count=1)], seed=3)
        session, tracer, _, ptr = make_traced(inj, fault_domain=True)
        bump(session, ptr, duration_ns=5e9)
        session.backend.device_synchronize()
        (aborted,) = [s for s in tracer.spans if s.name == "aborted:mutate"]
        assert aborted.end_ns <= session.process.clock_ns
        # Clamped to the watchdog bound (~30 s), not the full inflated
        # completion (5 s intended + 30 s hang).
        assert aborted.duration_ns < 31e9, "not the inflated hang duration"


class TestRung3DeviceReset:
    def test_ecc_restore_splices_trace_and_timeline(self):
        inj = FaultInjector(seed=3)
        store = CheckpointStore()
        session, tracer, profiler, ptr = make_traced(
            inj, store=store, fault_domain=True
        )
        bump(session, ptr)
        session.backend.device_synchronize()
        session.fault_domain.checkpoint()
        inj.arm(FaultSpec("ecc", at_count=inj.visits["ecc"] + 1))
        bump(session, ptr)  # ECC → device reset → restore → re-execute
        session.backend.device_synchronize()
        assert session.fault_domain.report.restores == 1
        assert tracer.segment == 1, "restore goes through a restart cut"
        rungs = {s.name for s in tracer.spans if s.cat == "recovery"}
        assert {"restore", "restart"} <= rungs
        timeline = profiler.timeline_report()
        assert timeline.segments == 2, "old device generation archived"
        assert timeline.events >= 2
        rep = profiler.report()
        assert rep.restarts >= 1
        out = np.empty(N, dtype=np.float32)
        session.backend.memcpy(out, ptr, NBYTES, "d2h")
        np.testing.assert_array_equal(
            out, np.arange(N, dtype=np.float32) + 2.0
        )

    def test_tracing_still_live_after_restore(self):
        inj = FaultInjector(seed=3)
        session, tracer, profiler, ptr = make_traced(
            inj, store=CheckpointStore(), fault_domain=True
        )
        bump(session, ptr)
        session.backend.device_synchronize()
        session.fault_domain.checkpoint()
        inj.arm(FaultSpec("ecc", at_count=inj.visits["ecc"] + 1))
        bump(session, ptr)
        session.backend.device_synchronize()
        events_before = profiler.timeline_report().events
        spans_before = len(tracer.spans)
        bump(session, ptr)  # post-recovery work must still be observed
        session.backend.device_synchronize()
        assert profiler.timeline_report().events > events_before
        assert len(tracer.spans) > spans_before
        new_kernels = [
            s for s in tracer.spans[spans_before:] if s.cat == "kernel"
        ]
        assert new_kernels and all(s.segment == 1 for s in new_kernels)
