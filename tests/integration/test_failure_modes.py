"""Failure-mode fidelity (DESIGN.md §4): what must break, where, and how."""

import numpy as np
import pytest

from repro.core import CracSession
from repro.core.halves import SplitProcess
from repro.cuda.api import FatBinary
from repro.errors import (
    CudaError,
    ReplayDivergenceError,
    RestartError,
    UnsupportedFeatureError,
)
from repro.gpu.uvm import UVM_PAGE

FB = FatBinary("fm.fatbin", ("k",))


class TestAslrBreaksReplay:
    def test_replay_diverges_with_aslr_enabled(self):
        """§3.2.4: CRAC disables ASLR; a restart on an ASLR'd process
        cannot reproduce the original allocation addresses."""
        session = CracSession(seed=7)
        b = session.backend
        b.register_app_binary(FB)
        b.malloc(4096)
        image = session.checkpoint()
        session.kill()

        # Sabotage: build the fresh lower half with ASLR re-enabled.
        fresh = SplitProcess(seed=1234, load_upper=False)
        fresh.process.personality(0)  # re-enable ASLR
        fresh.process.vas.aslr = True
        log = image.blob("crac/replay-log")
        with pytest.raises(ReplayDivergenceError):
            log.replay(fresh.runtime)


class TestCorruptedImage:
    def test_restart_detects_missing_buffer(self):
        session = CracSession(seed=8)
        b = session.backend
        b.register_app_binary(FB)
        b.malloc(4096)
        image = session.checkpoint()
        session.kill()
        # Corrupt: truncate the replay log so the buffer never reappears.
        image.blob("crac/replay-log").entries.clear()
        with pytest.raises(RestartError):
            session.restart(image)


class TestKernelWithoutReregistration:
    def test_fresh_library_rejects_unregistered_kernel(self):
        """§3.2.5: without fat-binary re-registration, launches fail on
        the fresh lower half."""
        split = SplitProcess(seed=9)
        from repro.cuda.interface import NativeBackend

        backend = NativeBackend(split.runtime)
        backend.register_app_binary(FB)
        backend.launch("k")
        # A fresh library (as after restart) without re-registration:
        fresh = SplitProcess(seed=9)
        fresh_backend = NativeBackend(fresh.runtime)
        with pytest.raises(CudaError, match="not registered"):
            fresh_backend.launch("k")


class TestLowerHalfClobber:
    def test_untracked_library_mmap_corrupts_upper_half_silently(self):
        """§3.2.2: if library allocations are NOT confined to the lower
        window (no loader interposition), they can land on upper-half
        pages and silently destroy them."""
        split = SplitProcess(seed=10)
        proc = split.process
        upper_addr = split.upper_mmap(8192)
        proc.vas.write(upper_addr, b"application state")
        # A rogue MAP_FIXED from library code that bypassed the loader:
        proc.vas.mmap(8192, addr=upper_addr, fixed=True, tag="lower:rogue-arena")
        # No exception — the corruption is silent...
        assert proc.vas.read(upper_addr, 17) == b"\0" * 17
        # ...but the model records it, and CRAC's design prevents it by
        # construction (the loader keeps lower mmaps inside the window).
        assert any(
            e.victim_tag.startswith("upper:") for e in proc.vas.clobber_events
        )

    def test_crac_loader_confines_library_mmaps(self):
        session = CracSession(seed=11)
        b = session.backend
        b.register_app_binary(FB)
        upper_addr = session.split.upper_mmap(8192)
        session.process.vas.write(upper_addr, b"application state")
        # Heavy allocation activity from the CUDA library:
        ptrs = [b.malloc(1 << 20) for _ in range(32)]
        p = b.malloc_managed(UVM_PAGE)
        assert session.process.vas.read(upper_addr, 17) == b"application state"
        assert not session.process.vas.clobber_events


class TestProxyLimits:
    def test_crcuda_cannot_run_uvm_app(self):
        from repro.apps import UnifiedMemoryStreams
        from repro.harness import run_app

        with pytest.raises(UnsupportedFeatureError):
            run_app(UnifiedMemoryStreams(scale=0.01), mode="crcuda", noise=False)

    def test_hypre_pattern_violates_crum(self):
        """HYPRE's host+device simultaneous UVM work across streams is
        exactly what CRUM's read-modify-write restriction forbids; CRAC
        runs it (tests/apps cover that)."""
        from repro.core.halves import SplitProcess
        from repro.cuda.api import ManagedUse
        from repro.proxy import CrumBackend

        split = SplitProcess(seed=12)
        crum = CrumBackend(split.runtime)
        crum.register_app_binary(FB)
        ptr = crum.malloc_managed(UVM_PAGE)
        s = crum.stream_create()
        crum.launch("k", duration_ns=5_000_000, stream=s,
                    managed=[ManagedUse(ptr, 0, UVM_PAGE, "w")])
        with pytest.raises(UnsupportedFeatureError):
            crum.managed_view(ptr, 64)  # host touch while kernel in flight


class TestRestoredMemoryIntegrity:
    def test_every_restored_byte_matches(self):
        """Exhaustive byte-level comparison of upper-half memory across
        a checkpoint/restart cycle."""
        session = CracSession(seed=13)
        b = session.backend
        b.register_app_binary(FB)
        rng = np.random.default_rng(3)
        writes = []
        for _ in range(20):
            addr = session.split.upper_mmap(16384)
            data = rng.bytes(1000)
            off = int(rng.integers(0, 15000))
            session.process.vas.write(addr + off, data)
            writes.append((addr + off, data))
        image = session.checkpoint()
        session.kill()
        session.restart(image)
        for addr, data in writes:
            assert session.process.vas.read(addr, len(data)) == data
