"""The GPU runtime fault domain: watchdog, ladder rungs, 2PC rank death.

Acceptance scenarios for the escalation ladder:

- a corrupted transfer (CRC mismatch) is healed by the retry rung with
  seeded exponential backoff — the data lands intact;
- a hung kernel / stalled copy engine is caught by the virtual-time
  watchdog at the next sync and healed by the stream-reset rung, with
  the abandoned in-flight window replayed from the stream-op log;
- an uncorrectable ECC error escalates to device reset + restore from
  the checkpoint store, with lost virtual work accounted;
- an exhausted ladder surfaces a typed ``RecoveryAbortedError`` with
  the full attempt trail — never a silent wrong answer;
- a rank dying between prepare and commit of a coordinated checkpoint
  leaves no generation half-committed, and the surviving quorum
  recovers from the prior cut (which store GC must have kept).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.session import CracSession
from repro.cuda.api import FatBinary
from repro.cuda.errors import CudaErrorCode, cuda_error
from repro.dmtcp.coordinator import HeartbeatMonitor
from repro.dmtcp.store import CheckpointStore
from repro.errors import (
    CoordinatedAbortError,
    CudaError,
    RankDeathError,
    RecoveryAbortedError,
)
from repro.gpu.timing import DEFAULT_WATCHDOG_LIMITS
from repro.harness.fault_injection import FaultInjector, FaultSpec
from repro.mpi import MpiWorld

FB = FatBinary("domain.fatbin", ("mutate",))
N = 64
NBYTES = 4 * N


def make_guarded(injector=None, *, seed=7, store=None):
    """Session + fault domain + one device buffer holding arange(N)."""
    session = CracSession(seed=seed, fault_injector=injector)
    store = store if store is not None else CheckpointStore()
    domain = session.enable_fault_domain(store)
    session.backend.register_app_binary(FB)
    ptr = session.backend.malloc(NBYTES)
    x = np.arange(N, dtype=np.float32)
    session.backend.memcpy(ptr, x, NBYTES, "h2d")
    return session, domain, ptr


def bump(session, ptr):
    """Launch one kernel that increments the buffer in place."""

    def fn():
        view = session.backend.device_view(ptr, NBYTES, np.float32)
        np.add(view, 1.0, out=view)

    session.backend.launch("mutate", fn, duration_ns=50_000.0)


def readback(session, ptr):
    out = np.empty(N, dtype=np.float32)
    session.backend.memcpy(out, ptr, NBYTES, "d2h")
    return out


class TestRetryRung:
    def test_corrupted_transfer_retried_with_backoff(self):
        inj = FaultInjector([FaultSpec("xfer-corrupt", at_count=1)], seed=3)
        session, domain, ptr = make_guarded(inj)
        out = readback(session, ptr)
        assert np.array_equal(out, np.arange(N, dtype=np.float32))
        rep = domain.report
        assert rep.retries == 1
        assert rep.backoff_ns > 0
        assert rep.stream_resets == 0 and rep.restores == 0
        (attempt,) = rep.attempts
        assert attempt.rung == "retry"
        assert "TRANSFER_CRC_MISMATCH" in attempt.error

    def test_backoff_grows_exponentially_with_jitter(self):
        # Two consecutive corruptions in one failure episode: the second
        # retry doubles the base delay before jitter.
        inj = FaultInjector(
            [FaultSpec("xfer-corrupt", probability=1.0, max_fires=2)], seed=3
        )
        session, domain, ptr = make_guarded(inj)
        out = readback(session, ptr)
        assert np.array_equal(out, np.arange(N, dtype=np.float32))
        backoffs = [
            a.backoff_ns for a in domain.report.attempts if a.rung == "retry"
        ]
        assert len(backoffs) == 2
        # Jitter is in [0.5, 1.5); doubling the base dominates it:
        # 2·j2/j1 > 2·(0.5/1.5) > 0.5 always.
        assert backoffs[1] > backoffs[0] * 0.5
        assert domain.report.backoff_ns == pytest.approx(sum(backoffs))

    def test_uvm_fault_storm_retried(self):
        inj = FaultInjector([FaultSpec("uvm-storm", at_count=1)], seed=3)
        session, domain, _ = make_guarded(inj)
        mptr = session.backend.malloc_managed(8192)
        view = session.backend.managed_view(mptr, 8192)
        view[:] = 0x5A
        session.backend.mem_prefetch(mptr, 8192)  # trips the storm
        assert domain.report.retries == 1
        assert bytes(session.backend.managed_view(mptr, 8192)) == b"\x5A" * 8192

    def test_program_error_is_surfaced_unchanged(self):
        session, domain, _ = make_guarded()

        def bad_call():
            raise cuda_error(CudaErrorCode.INVALID_VALUE, "bad argument")

        with pytest.raises(CudaError) as exc:
            domain.run("copy", bad_call)
        assert exc.value.severity == "program"
        assert not isinstance(exc.value, RecoveryAbortedError)
        assert domain.report.attempts == []


class TestWatchdogAndStreamReset:
    def test_kernel_hang_caught_at_sync_and_stream_reset(self):
        inj = FaultInjector([FaultSpec("kernel-hang", at_count=1)], seed=3)
        session, domain, ptr = make_guarded(inj)
        t0 = session.process.clock_ns
        bump(session, ptr)  # poisons the stream; no error yet
        session.backend.device_synchronize()  # watchdog fires here
        rep = domain.report
        assert rep.watchdog_trips == 1
        assert rep.stream_resets == 1
        assert rep.retries == 0 and rep.restores == 0
        # The host paid the watchdog bound, not the inflated 30 s hang.
        waited = session.process.clock_ns - t0
        assert waited >= DEFAULT_WATCHDOG_LIMITS.kernel_timeout_ns
        assert waited < 2 * DEFAULT_WATCHDOG_LIMITS.kernel_timeout_ns
        # Stream is usable again and content was applied exactly once.
        assert all(s.fault is None for s in session.runtime.streams.values())
        out = readback(session, ptr)
        assert np.array_equal(out, np.arange(N, dtype=np.float32) + 1.0)

    def test_copy_stall_caught_and_reset(self):
        # The setup h2d copy is copy-stall visit 1; the d2d is visit 2.
        inj = FaultInjector([FaultSpec("copy-stall", at_count=2)], seed=3)
        session, domain, ptr = make_guarded(inj)
        dst = session.backend.malloc(NBYTES)
        session.backend.memcpy(dst, ptr, NBYTES, "d2d")  # stalls the engine
        session.backend.device_synchronize()
        rep = domain.report
        assert rep.watchdog_trips == 1
        assert rep.stream_resets == 1
        assert (
            "STREAM_STALLED" in rep.attempts[0].error
            or "stalled" in rep.attempts[0].error
        )
        out = readback(session, dst)
        assert np.array_equal(out, np.arange(N, dtype=np.float32))

    def test_stream_scoped_sync_ignores_other_streams(self):
        inj = FaultInjector([FaultSpec("kernel-hang", at_count=1)], seed=3)
        session, domain, ptr = make_guarded(inj)
        hung = session.backend.stream_create()
        clean = session.backend.stream_create()

        session.backend.launch(
            "mutate", None, stream=hung, duration_ns=50_000.0
        )  # poisons `hung`
        # Draining the clean stream must not trip the hung stream's flag.
        session.backend.stream_synchronize(clean)
        assert domain.report.watchdog_trips == 0
        # Draining the poisoned stream does.
        session.backend.stream_synchronize(hung)
        assert domain.report.watchdog_trips == 1
        assert domain.report.stream_resets == 1


class TestRestoreRung:
    def test_ecc_restores_from_store_and_accounts_lost_work(self):
        inj = FaultInjector(seed=3)
        store = CheckpointStore()
        session, domain, ptr = make_guarded(inj, store=store)
        bump(session, ptr)
        session.backend.device_synchronize()
        gen = domain.checkpoint()
        assert gen is not None
        # Virtual work after the cut — all of it is at stake.
        session.process.advance(5e6)
        inj.arm(FaultSpec("ecc", at_count=inj.visits["ecc"] + 1))
        bump(session, ptr)  # ECC page error → kill, restore, re-execute
        session.backend.device_synchronize()
        rep = domain.report
        assert rep.restores == 1
        assert rep.lost_work_ns >= 5e6
        assert session.restarts, "restore rung must go through restart"
        out = readback(session, ptr)
        assert np.array_equal(out, np.arange(N, dtype=np.float32) + 2.0)

    def test_ladder_exhaustion_is_a_typed_abort_with_trail(self):
        # Every kernel admission fails fatally and there is no committed
        # generation to fall back to: the ladder must abort, not spin.
        inj = FaultInjector(
            [FaultSpec("ecc", probability=1.0, max_fires=None)], seed=3
        )
        session, domain, ptr = make_guarded(inj)
        with pytest.raises(RecoveryAbortedError) as exc:
            bump(session, ptr)
        assert exc.value.report is domain.report
        assert domain.report.aborted
        assert domain.report.attempts[-1].rung == "abort"
        assert isinstance(exc.value.cause, CudaError)
        assert exc.value.cause.fatal

    def test_checkpoint_placement_independent_of_armed_faults(self):
        # Satellite: arming runtime faults must not shift where the
        # coordinator's scheduled random checkpoint lands.
        quiet = CracSession(seed=11)
        noisy = CracSession(
            seed=11,
            fault_injector=FaultInjector(
                [FaultSpec("xfer-corrupt", probability=0.5, max_fires=None)],
                seed=9,
            ),
        )
        assert (
            quiet.coordinator.schedule_random_checkpoint(1000)
            == noisy.coordinator.schedule_random_checkpoint(1000)
        )


class TestRankDeathDuring2PC:
    def _world(self, n_ranks, at_count, *, keep_generations=3):
        inj = FaultInjector(
            [FaultSpec("heartbeat", at_count=at_count)], seed=5
        )
        world = MpiWorld(n_ranks, seed=5, fault_injector=inj)
        stores = [
            CheckpointStore(keep_generations=keep_generations)
            for _ in range(n_ranks)
        ]
        ptrs = []
        for i, r in enumerate(world.ranks):
            p = r.backend.malloc(4096)
            r.backend.memset(p, 0x10 + i, 4096)
            ptrs.append(p)
        return world, stores, ptrs

    def test_no_generation_half_committed(self):
        # First 2PC is healthy (3 heartbeat visits); the crash lands on
        # visit 5 = rank 1's round-1 beat of the second 2PC.
        world, stores, ptrs = self._world(3, at_count=5)
        gens = world.checkpoint_all_2pc(stores, heartbeat=HeartbeatMonitor(3))
        for i, r in enumerate(world.ranks):
            r.backend.memset(ptrs[i], 0x60 + i, 4096)  # post-cut work
        with pytest.raises(RankDeathError) as exc:
            world.checkpoint_all_2pc(stores, heartbeat=HeartbeatMonitor(3))
        assert exc.value.dead_ranks == [1]
        # The aborted cut left nothing behind: same generations, no
        # partials, on every rank — including the dead one.
        for i, store in enumerate(stores):
            assert store.generations == [gens[i]]
            assert store.discard_partials() == 0
        # Survivor quorum recovers the whole job from the prior cut.
        reports = world.restart_all_latest(stores)
        assert {rep.generation for rep in reports} == set(gens)
        for i, r in enumerate(world.ranks):
            view = r.backend.device_view(ptrs[i], 4096)
            assert bytes(view) == bytes([0x10 + i]) * 4096

    def test_store_gc_keeps_prior_chain_restorable(self):
        # Commit three cuts with keep_generations=2: GC retires gen 1.
        # The rank death aborts the 4th cut; restart must land on gen 3.
        world, stores, ptrs = self._world(3, at_count=10, keep_generations=2)
        gens = []
        for round_no in range(3):
            for i, r in enumerate(world.ranks):
                r.backend.memset(ptrs[i], 0x20 + round_no * 16 + i, 4096)
            gens.append(
                world.checkpoint_all_2pc(stores, heartbeat=HeartbeatMonitor(3))
            )
        assert stores[0].generations == [gens[1][0], gens[2][0]]
        for i, r in enumerate(world.ranks):
            r.backend.memset(ptrs[i], 0x77, 4096)
        with pytest.raises(RankDeathError):
            world.checkpoint_all_2pc(stores, heartbeat=HeartbeatMonitor(3))
        reports = world.restart_all_latest(stores)
        assert {rep.generation for rep in reports} == set(gens[2])
        for i, r in enumerate(world.ranks):
            view = r.backend.device_view(ptrs[i], 4096)
            assert bytes(view) == bytes([0x20 + 2 * 16 + i]) * 4096

    def test_lost_quorum_aborts_the_job(self):
        world, stores, _ = self._world(2, at_count=3)
        world.checkpoint_all_2pc(stores, heartbeat=HeartbeatMonitor(2))
        with pytest.raises(CoordinatedAbortError):
            world.checkpoint_all_2pc(stores, heartbeat=HeartbeatMonitor(2))


# -- property: ladder recovery terminates and never silently corrupts ---------

runtime_fault_plans = st.lists(
    st.tuples(
        st.sampled_from(
            ["ecc", "kernel-hang", "copy-stall", "xfer-corrupt", "uvm-storm"]
        ),
        st.one_of(
            st.integers(min_value=1, max_value=12),  # at_count
            st.floats(min_value=0.05, max_value=0.6),  # probability
        ),
        st.integers(min_value=1, max_value=3),  # max_fires
    ),
    max_size=4,
)


def run_schedule(specs, seed):
    inj = FaultInjector(list(specs), seed=seed)
    session, domain, ptr = make_guarded(inj, seed=seed)
    domain.checkpoint()  # anchor generation for the restore rung
    for i in range(5):
        bump(session, ptr)
        session.backend.device_synchronize()
        if i == 2:
            domain.checkpoint()
    return readback(session, ptr), domain


@settings(max_examples=25, deadline=None)
@given(runtime_fault_plans, st.integers(min_value=0, max_value=2**16))
def test_ladder_terminates_and_never_silently_corrupts(plan, seed):
    """For any seeded runtime fault schedule, every guarded call either
    recovers — final state bit-identical to the fault-free run — or the
    run aborts with a typed error. Never a silent wrong answer, never a
    retry livelock."""
    specs = [
        FaultSpec(
            stage,
            at_count=when if isinstance(when, int) else None,
            probability=None if isinstance(when, int) else when,
            max_fires=max_fires,
        )
        for stage, when, max_fires in plan
    ]
    try:
        out, domain = run_schedule(specs, seed)
    except (RecoveryAbortedError, CudaError):
        return  # typed abort is an allowed outcome
    # Rung budgets are per failure episode, so the trail is bounded by
    # (guarded calls) × (retries + resets + restores + abort).
    assert len(domain.report.attempts) <= 20 * 8
    assert np.array_equal(out, np.arange(N, dtype=np.float32) + 5.0)
