"""End-to-end self-healing: faults in the checkpoint/restore pipeline.

The acceptance scenarios for the crash-consistent store:

- a fault mid-checkpoint tears the staged write; the store discards the
  partial and the job keeps running — and later restarts — from the
  previous committed generation;
- a fault mid-restore makes ``restart_latest`` back off, retry, and
  fall back one generation, with the full attempt trail in the report;
- a corrupted committed region fails restore deterministically via
  checksum verification;
- a coordinated multi-rank checkpoint aborts atomically when any rank
  fails to stage (no rank ever commits a cut its peers lack).
"""

import numpy as np
import pytest

from repro.core.session import CracSession
from repro.cuda.api import FatBinary
from repro.dmtcp.store import CheckpointStore
from repro.errors import (
    CheckpointError,
    CorruptCheckpointError,
    InjectedFault,
    ReplayDivergenceError,
    RestartError,
)
from repro.harness.fault_injection import FaultInjector, FaultSpec
from repro.mpi import MpiJacobi, MpiWorld


FB = FatBinary("selfheal.fatbin", ("mutate",))


def make_session(injector=None, seed=11):
    session = CracSession(seed=seed, fault_injector=injector)
    session.backend.register_app_binary(FB)
    ptr = session.backend.malloc(4 * 64)
    x = np.arange(64, dtype=np.float32)
    session.backend.memcpy(ptr, x, x.nbytes, "h2d")
    # Back some upper-half pages so images carry host bytes too.
    host = session.split.upper_mmap(8192)
    session.process.vas.write(host, b"\xC3" * 8192)
    return session, ptr


def device_values(session, ptr):
    return session.backend.device_view(ptr, 4 * 64, np.float32).copy()


class TestMidCheckpointFault:
    def test_partial_discarded_job_continues_from_previous_generation(self):
        """Fault tears the 2nd checkpoint's write → gen 1 remains the
        recovery line and restores the gen-1 state."""
        inj = FaultInjector(seed=5)
        store = CheckpointStore(fault_injector=inj)
        session, ptr = make_session()

        # Generation 1 commits cleanly (no fault armed yet).
        session.checkpoint(store=store)
        gen1_values = device_values(session, ptr)
        # Arm a crash partway through the *next* image's write.
        inj.reset_counters()
        inj.arm(FaultSpec("image-write", at_count=3))

        # Progress past gen 1, then the 2nd checkpoint tears mid-write.
        view = session.backend.device_view(ptr, 4 * 64, np.float32)
        session.backend.launch("mutate", lambda: view.__iadd__(100.0))
        session.backend.device_synchronize()
        with pytest.raises(InjectedFault):
            session.checkpoint(store=store)
        assert len(store.partials()) == 1
        assert store.generations == [1]  # the torn image never committed

        # The node then dies; self-healing restart discards the partial
        # and restores generation 1.
        session.kill()
        report = session.restart_latest(store)
        assert store.partials() == []
        assert report.generation == 1
        np.testing.assert_array_equal(device_values(session, ptr), gen1_values)

    def test_job_level_continuity_after_absorbed_checkpoint_fault(self):
        """The app can keep computing after an aborted checkpoint."""
        inj = FaultInjector([FaultSpec("image-write", at_count=2)], seed=5)
        store = CheckpointStore(fault_injector=inj)
        session, ptr = make_session()
        with pytest.raises(InjectedFault):
            session.checkpoint(store=store)
        store.discard_partials()
        # Work continues; the next checkpoint (fault spent) commits.
        session.checkpoint(store=store)
        assert store.latest() == 1


class TestMidRestoreFault:
    def test_backoff_then_generation_fallback_with_attempt_trail(self):
        """Mid-restore faults exhaust gen 2's retries; restart_latest
        backs off exponentially and completes from gen 1."""
        inj = FaultInjector(
            [FaultSpec("restore", probability=1.0, max_fires=2)], seed=3
        )
        store = CheckpointStore()
        session, ptr = make_session(injector=inj)
        session.checkpoint(store=store)  # gen 1
        view = session.backend.device_view(ptr, 4 * 64, np.float32)
        session.backend.launch("mutate", lambda: view.__imul__(3.0))
        session.backend.device_synchronize()
        gen2_values = device_values(session, ptr)
        session.checkpoint(store=store)  # gen 2
        session.kill()

        report = session.restart_latest(store, retries=1, backoff_s=0.5)
        # Trail: gen 2 try 1 (fail), gen 2 try 2 after backoff (fail),
        # gen 1 try 1 (success).
        assert [a.generation for a in report.attempts] == [2, 2, 1]
        assert [a.succeeded for a in report.attempts] == [False, False, True]
        assert report.attempts[1].backoff_ns == 0.5e9
        assert report.generation == 1
        assert report.backoff_ns > 0
        # Fell back one generation: gen-1 state, not gen-2's.
        restored = device_values(session, ptr)
        assert not np.array_equal(restored, gen2_values)
        np.testing.assert_array_equal(restored, np.arange(64, dtype=np.float32))

    def test_transient_fault_heals_on_same_generation(self):
        inj = FaultInjector([FaultSpec("restore", at_count=1)], seed=3)
        store = CheckpointStore()
        session, ptr = make_session(injector=inj)
        session.checkpoint(store=store)
        session.kill()
        report = session.restart_latest(store, retries=2, backoff_s=0.25)
        assert [a.generation for a in report.attempts] == [1, 1]
        assert report.generation == 1

    def test_injected_replay_divergence_falls_back(self):
        inj = FaultInjector(
            [FaultSpec("replay", at_count=1, kind="divergence")], seed=3
        )
        store = CheckpointStore()
        session, ptr = make_session(injector=inj)
        session.checkpoint(store=store)
        session.checkpoint(store=store)
        session.kill()
        report = session.restart_latest(store, retries=0)
        assert report.generation == 1  # gen 2's replay diverged
        assert "divergence" in report.attempts[0].error

    def test_exhausting_every_generation_raises(self):
        inj = FaultInjector(
            [FaultSpec("restore", probability=1.0, max_fires=None)], seed=3
        )
        store = CheckpointStore()
        session, ptr = make_session(injector=inj)
        session.checkpoint(store=store)
        session.kill()
        with pytest.raises(RestartError, match="exhausted"):
            session.restart_latest(store, retries=1, backoff_s=0.01)


class TestCorruptionDetection:
    def test_corrupt_committed_region_fails_restore_deterministically(self):
        store = CheckpointStore()
        session, ptr = make_session()
        session.checkpoint(store=store)
        image = store.get(1).image
        region = next(r for r in image.regions if r.pages)
        pg = min(region.pages)
        flipped = bytearray(region.pages[pg])
        flipped[0] ^= 0x01  # a single flipped bit
        region.pages[pg] = bytes(flipped)
        session.kill()
        for _ in range(2):
            with pytest.raises(CorruptCheckpointError):
                store.load(1)

    def test_restart_latest_skips_corrupt_newest(self):
        store = CheckpointStore()
        session, ptr = make_session()
        session.checkpoint(store=store)  # gen 1 (clean)
        session.checkpoint(store=store)  # gen 2 (to be corrupted)
        image = store.get(2).image
        region = next(r for r in image.regions if r.pages)
        pg = min(region.pages)
        region.pages[pg] = bytes(len(region.pages[pg]))
        session.kill()
        report = session.restart_latest(store, retries=3)
        # Corruption is deterministic: exactly one attempt on gen 2
        # (no retries wasted), then gen 1 succeeds.
        assert [a.generation for a in report.attempts] == [2, 1]
        assert "Corrupt" in report.attempts[0].error


class TestCoordinatedTwoPhaseCommit:
    def test_one_rank_failing_to_stage_aborts_all(self):
        inj = FaultInjector([FaultSpec("precheckpoint", at_count=2)], seed=1)
        world = MpiWorld(2, fault_injector=inj)
        stores = [CheckpointStore() for _ in range(2)]
        with pytest.raises(CheckpointError, match="aborted in phase 1"):
            world.checkpoint_all_2pc(stores)
        # All-or-nothing: nobody committed, nothing torn left behind.
        for store in stores:
            assert store.generations == []
            assert store.partials() == []

    def test_commit_stage_fault_aborts_all(self):
        inj = FaultInjector([FaultSpec("commit", at_count=1)], seed=1)
        world = MpiWorld(2, fault_injector=inj)
        stores = [CheckpointStore() for _ in range(2)]
        with pytest.raises(InjectedFault):
            world.checkpoint_all_2pc(stores)
        for store in stores:
            assert store.generations == []

    def test_clean_2pc_commits_every_rank(self):
        world = MpiWorld(3)
        stores = [CheckpointStore() for _ in range(3)]
        gens = world.checkpoint_all_2pc(stores)
        assert gens == [1, 1, 1]
        for store in stores:
            assert store.generations == [1]

    def test_store_count_must_match_ranks(self):
        world = MpiWorld(2)
        with pytest.raises(ValueError):
            world.checkpoint_all_2pc([CheckpointStore()])


class TestJacobiStoreBacked:
    def test_digest_matches_uninterrupted_run(self):
        """2PC checkpoint + store-backed whole-job restart is transparent."""
        baseline = MpiJacobi(MpiWorld(2, seed=4), iterations=10, seed=4).run()
        world = MpiWorld(2, seed=4)
        stores = [CheckpointStore() for _ in range(2)]
        digest = MpiJacobi(world, iterations=10, seed=4).run(
            checkpoint_at_iter=5, stores=stores
        )
        assert digest == baseline
        for store in stores:
            assert store.generations == [1]

    def test_aborted_coordinated_checkpoint_is_absorbed(self):
        """A phase-1 fault skips that cut; the job still finishes with
        the right answer and commits on the retry."""
        baseline = MpiJacobi(MpiWorld(2, seed=4), iterations=10, seed=4).run()
        inj = FaultInjector([FaultSpec("precheckpoint", at_count=2)], seed=1)
        world = MpiWorld(2, seed=4, fault_injector=inj)
        stores = [CheckpointStore() for _ in range(2)]
        digest = MpiJacobi(world, iterations=10, seed=4).run(
            checkpoint_at_iter=5, stores=stores
        )
        assert digest == baseline
        for store in stores:  # the retried cut committed
            assert store.generations == [1]
