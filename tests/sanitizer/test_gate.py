"""CI-gate sections: planted detection, clean sweep, report formatting."""

from repro.sanitizer.gate import (
    _clean_apps_section,
    _planted_section,
    format_gate,
    run_gate,
)
from repro.sanitizer.planted import SCENARIOS, run_scenario


class TestPlanted:
    def test_every_scenario_detected(self):
        """The headline acceptance criterion: 100% planted detection,
        zero findings on the negative controls."""
        section = _planted_section()
        assert section["detection_rate"] == 1.0
        assert section["false_positives"] == 0
        assert section["ok"]

    def test_each_checker_has_three_positives(self):
        """ISSUE floor: >= 3 planted positives per checker."""
        per = {}
        for sc in SCENARIOS:
            for checker, _ in sc.expect:
                per[checker] = per.get(checker, 0) + 1
        for checker in ("racecheck", "synccheck", "memcheck", "initcheck"):
            assert per.get(checker, 0) >= 3, checker

    def test_scenario_rows_name_what_was_found(self):
        sc = next(s for s in SCENARIOS if s.name == "mem-double-free")
        row = run_scenario(sc)
        assert row["detected"]
        assert ["memcheck", "double-free"] in [
            list(f) for f in row["found"]
        ] or ("memcheck", "double-free") in row["found"]
        assert row["missing"] == []


class TestCleanApps:
    def test_single_app_sweep_is_clean(self):
        from repro.apps.rodinia import Gaussian

        section = _clean_apps_section(0.05, "V100", 0, apps=[Gaussian])
        assert section["ok"]
        (row,) = section["apps"]
        assert row["hazards"] == 0
        assert row["ops_instrumented"] > 0


class TestReport:
    def test_run_gate_smoke_and_format(self):
        """One full (smoke-scale) gate run: verdict PASS, JSON shape
        stable, text rendering mentions each section."""
        report = run_gate(scale=0.02)
        assert set(report) == {
            "planted", "clean_apps", "lint", "overhead", "ok"
        }
        assert report["ok"], format_gate(report)
        text = format_gate(report)
        for token in ("planted:", "clean:", "lint:", "overhead:",
                      "verdict:   PASS"):
            assert token in text

    def test_format_names_failures(self):
        report = {
            "planted": {
                "scenarios": [{
                    "name": "race-x", "detected": False, "negative": False,
                    "missing": [("racecheck", "write-write")], "found": [],
                    "hazards": 0, "expected": [],
                }],
                "positives": 1, "detected": 0, "detection_rate": 0.0,
                "negatives": 0, "false_positives": 0, "ok": False,
            },
            "clean_apps": {"apps": [], "total_hazards": 0, "ok": True},
            "lint": {"findings": [], "count": 0, "ok": True},
            "overhead": {
                "ratio": 1.0, "limit": 1.25, "digest_match": True,
                "ok": True,
            },
            "ok": False,
        }
        text = format_gate(report)
        assert "FAIL" in text
        assert "race-x" in text
