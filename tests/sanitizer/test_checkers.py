"""Unit tests for the synccheck, memcheck, and initcheck checkers."""

import numpy as np
import pytest

from repro.errors import CudaError
from repro.sanitizer.planted import LONG_KERNEL_NS, _machine


@pytest.fixture
def machine():
    return _machine()


def kinds(san):
    return {(h.checker, h.kind) for h in san.hazards}


class TestSynccheck:
    def test_cut_with_inflight_kernel_flagged(self, machine):
        rt, san = machine
        s = rt.cudaStreamCreate()
        rt.cudaLaunchKernel("k", stream=s, duration_ns=LONG_KERNEL_NS)
        san.on_checkpoint_cut(rt)
        assert ("synccheck", "unsynced-cut") in kinds(san)
        (h,) = [x for x in san.hazards if x.checker == "synccheck"]
        assert h.stream_sids == (s.sid,)
        assert "cudaDeviceSynchronize" in h.message

    def test_cut_after_drain_clean(self, machine):
        rt, san = machine
        s = rt.cudaStreamCreate()
        rt.cudaLaunchKernel("k", stream=s, duration_ns=LONG_KERNEL_NS)
        rt.cudaDeviceSynchronize()
        san.on_checkpoint_cut(rt)
        assert not san.hazards

    def test_commit_with_inflight_work_flagged(self, machine):
        from repro.dmtcp.image import CheckpointImage

        rt, san = machine
        s = rt.cudaStreamCreate()
        image = CheckpointImage(pid=1, created_at_ns=rt.process.clock_ns)
        san.watch_image(image)
        rt.cudaLaunchKernel("k", stream=s, duration_ns=LONG_KERNEL_NS)
        image.mark_committed()
        assert ("synccheck", "early-commit") in kinds(san)

    def test_forked_image_commit_exempt(self, machine):
        """A forked image's commit legitimately lands mid-run (COW
        protects the snapshot) — synccheck must not flag it."""
        from repro.dmtcp.image import CheckpointImage

        rt, san = machine
        s = rt.cudaStreamCreate()
        image = CheckpointImage(pid=1, created_at_ns=rt.process.clock_ns)
        image.forked_writer = object()
        san.watch_image(image)
        rt.cudaLaunchKernel("k", stream=s, duration_ns=LONG_KERNEL_NS)
        image.mark_committed()
        assert not san.hazards

    def test_sync_hook_not_pickled(self, machine):
        """The watch hook must not leak into the image's own pickle
        payload (it holds the whole sanitizer object graph)."""
        from repro.dmtcp.image import CheckpointImage

        rt, san = machine
        image = CheckpointImage(pid=1, created_at_ns=0.0)
        san.watch_image(image)
        assert "sync_hook" not in image.__getstate__()


class TestMemcheck:
    def test_use_after_free(self, machine):
        rt, san = machine
        p = rt.cudaMalloc(1024)
        rt.cudaFree(p)
        with pytest.raises(CudaError):
            rt.cudaMemset(p, 0, 64)
        assert ("memcheck", "use-after-free") in kinds(san)

    def test_wild_pointer(self, machine):
        rt, san = machine
        with pytest.raises(CudaError):
            rt.device_view(0xDEAD_0000, 16)
        assert ("memcheck", "invalid-pointer") in kinds(san)

    def test_out_of_bounds_memset(self, machine):
        rt, san = machine
        p = rt.cudaMalloc(1024)
        rt.cudaMemset(p, 0, 1024 + 512)
        assert ("memcheck", "out-of-bounds") in kinds(san)
        (h,) = [x for x in san.hazards if x.checker == "memcheck"]
        assert h.byte_range == (0, 1536)

    def test_double_free(self, machine):
        rt, san = machine
        p = rt.cudaMalloc(1024)
        rt.cudaFree(p)
        with pytest.raises(CudaError):
            rt.cudaFree(p)
        assert ("memcheck", "double-free") in kinds(san)

    def test_invalid_free(self, machine):
        rt, san = machine
        with pytest.raises(CudaError):
            rt.cudaFree(0xDEAD_0000)
        assert ("memcheck", "double-free") not in kinds(san)
        assert any(h.kind in ("invalid-free", "invalid-pointer")
                   for h in san.hazards)

    def test_leak_reported_only_at_finish(self, machine):
        rt, san = machine
        rt.cudaMalloc(2048)
        assert not san.hazards
        san.finish(rt)
        assert ("memcheck", "leak") in kinds(san)

    def test_freed_allocations_not_leaks(self, machine):
        rt, san = machine
        p = rt.cudaMalloc(2048)
        rt.cudaFree(p)
        san.finish(rt)
        assert not san.hazards

    def test_preexisting_allocations_not_leaks(self):
        """Buffers alive before attach are not this run's leaks."""
        from repro.sanitizer.core import Sanitizer

        rt, san = _machine()
        san.detach()
        rt.cudaMalloc(4096)
        san2 = Sanitizer()
        san2.attach(rt)
        san2.finish(rt)
        assert not san2.hazards


class TestInitcheck:
    def test_d2h_from_unwritten_buffer(self, machine):
        rt, san = machine
        p = rt.cudaMalloc(1024)
        out = np.empty(1024, dtype=np.uint8)
        rt.cudaMemcpy(out, p, 1024, kind="d2h")
        assert ("initcheck", "uninitialized-read") in kinds(san)

    def test_written_buffer_clean(self, machine):
        rt, san = machine
        p = rt.cudaMalloc(1024)
        rt.cudaMemset(p, 0, 1024)
        out = np.empty(1024, dtype=np.uint8)
        rt.cudaMemcpy(out, p, 1024, kind="d2h")
        assert not san.hazards

    def test_partial_write_leaves_hole(self, machine):
        rt, san = machine
        p = rt.cudaMalloc(1024)
        rt.cudaMemcpy(p, np.zeros(256, dtype=np.uint8), 256, kind="h2d")
        rt.cudaMemcpy(p, np.zeros(256, dtype=np.uint8), 256, kind="h2d",
                      dst_offset=768)
        out = np.empty(1024, dtype=np.uint8)
        rt.cudaMemcpy(out, p, 1024, kind="d2h")
        hits = [h for h in san.hazards if h.checker == "initcheck"]
        assert len(hits) == 1
        assert hits[0].byte_range == (256, 768)

    def test_d2d_copy_propagates_initialization(self, machine):
        """d2d from a written source initializes the destination; a
        later d2h read of the destination is clean."""
        rt, san = machine
        src = rt.cudaMalloc(512)
        dst = rt.cudaMalloc(512)
        rt.cudaMemset(src, 0, 512)
        rt.cudaMemcpy(dst, src, 512, kind="d2d")
        out = np.empty(512, dtype=np.uint8)
        rt.cudaMemcpy(out, dst, 512, kind="d2h")
        assert not san.hazards

    def test_d2d_from_unwritten_source_flagged(self, machine):
        rt, san = machine
        src = rt.cudaMalloc(512)
        dst = rt.cudaMalloc(512)
        rt.cudaMemcpy(dst, src, 512, kind="d2d")
        assert ("initcheck", "uninitialized-read") in kinds(san)


class TestCheckerSelection:
    def test_disabled_checker_is_silent(self):
        from repro.sanitizer.core import Sanitizer

        rt, san = _machine()
        san.detach()
        quiet = Sanitizer(checkers=("racecheck",))
        quiet.attach(rt)
        p = rt.cudaMalloc(1024)
        out = np.empty(1024, dtype=np.uint8)
        rt.cudaMemcpy(out, p, 1024, kind="d2h")  # uninitialized read
        assert not quiet.hazards
