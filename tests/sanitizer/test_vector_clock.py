"""Vector-clock algebra: join/tick/compare invariants."""

from repro.sanitizer.vector_clock import VectorClock


class TestOrdering:
    def test_empty_clocks_are_equal_not_concurrent(self):
        a, b = VectorClock(), VectorClock()
        assert a.leq(b) and b.leq(a)
        assert not a.concurrent_with(b)

    def test_tick_makes_strictly_later(self):
        a = VectorClock()
        b = a.copy()
        b.tick(1)
        assert a.leq(b)
        assert not b.leq(a)

    def test_independent_ticks_are_concurrent(self):
        a, b = VectorClock(), VectorClock()
        a.tick(1)
        b.tick(2)
        assert a.concurrent_with(b)

    def test_join_orders_after_both(self):
        a, b = VectorClock(), VectorClock()
        a.tick(1)
        b.tick(2)
        c = a.copy()
        c.join(b)
        assert a.leq(c) and b.leq(c)
        assert not c.leq(a) and not c.leq(b)

    def test_join_is_componentwise_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({1: 1, 3: 4})
        a.join(b)
        assert a.clocks == {1: 3, 2: 1, 3: 4}

    def test_copy_is_independent(self):
        a = VectorClock({1: 1})
        b = a.copy()
        b.tick(1)
        assert a.clocks[1] == 1
        assert b.clocks[1] == 2

    def test_happens_before_via_message(self):
        """The classic three-event chain: a → (join) → b orders them."""
        sender = VectorClock()
        sender.tick("s")
        receiver = VectorClock()
        receiver.join(sender)
        receiver.tick("r")
        assert sender.leq(receiver)
        assert not receiver.leq(sender)
