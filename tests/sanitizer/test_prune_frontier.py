"""History-prune soundness: no live race may be lost to pruning.

The pruner's correctness hinges on the *frontier* — the clock every
future device op is guaranteed to dominate. The original implementation
took the componentwise min over the clocks of **existing** streams
only; that over-prunes: an access dominated by its writer and one
event-joined peer is still concurrent with the first op of a stream
created *later*, whose clock starts from host ⊔ default-barrier (the
birth clock) and may never have absorbed the access. These tests pin
the fixed frontier and the exact/sound compaction stages behind it.
"""

import numpy as np
import pytest

from repro.sanitizer.core import HISTORY_LIMIT, Sanitizer
from repro.sanitizer.planted import _machine
from repro.sanitizer.vector_clock import HOST, VectorClock


@pytest.fixture
def machine():
    return _machine()


def races(san):
    return [h for h in san.hazards if h.checker == "racecheck"]


class TestFrontierBirthClock:
    def test_frontier_includes_birth_clock(self):
        """min must range over host ⊔ barrier, not just live streams."""
        san = Sanitizer()
        san._stream_clocks = {
            1: VectorClock({1: 5, HOST: 2}),
            2: VectorClock({1: 5, 2: 3, HOST: 2}),
        }
        san._host_clock = VectorClock({HOST: 2})
        san._default_barrier = VectorClock()
        frontier = san._prune_frontier()
        # Component 1 is 5 in every live stream, but a stream created
        # now would be born with clock {host: 2} — without component 1.
        assert frontier.clocks == {HOST: 2}

    def test_frontier_is_min_when_host_synced(self):
        san = Sanitizer()
        san._stream_clocks = {
            1: VectorClock({1: 5, HOST: 2}),
            2: VectorClock({1: 4, 2: 3, HOST: 2}),
        }
        san._host_clock = VectorClock({1: 4, HOST: 2})
        san._default_barrier = VectorClock()
        frontier = san._prune_frontier()
        assert frontier.clocks == {1: 4, HOST: 2}

    def test_late_stream_race_survives_prune(self, machine):
        """Stream 1 writes; stream 2 joins via event and floods the
        history past HISTORY_LIMIT; the host never syncs. A stream
        created afterwards must still race stream 1's write — the old
        existing-streams-only frontier dropped it here."""
        rt, san = machine
        s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
        dst = rt.cudaMalloc(4096)
        data = np.zeros(4096, dtype=np.uint8)
        rt.cudaMemcpy(dst, data, 64, kind="h2d", stream=s1, async_=True)
        e = rt.cudaEventCreate()
        rt.cudaEventRecord(e, s1)
        rt.cudaStreamWaitEvent(s2, e)
        one = np.zeros(1, dtype=np.uint8)
        for i in range(HISTORY_LIMIT + 20):
            rt.cudaMemcpy(dst, one, 1, kind="h2d", stream=s2,
                          async_=True, dst_offset=64 + i)
        assert not san.hazards  # setup is fully ordered
        s3 = rt.cudaStreamCreate()
        rt.cudaMemcpy(dst, data, 64, kind="h2d", stream=s3, async_=True)
        found = races(san)
        assert found, "race against the pruned-away stream-1 write lost"
        assert any(s1.sid in h.stream_sids and s3.sid in h.stream_sids
                   for h in found)

    def test_device_sync_lets_frontier_drop_history(self, machine):
        """After a device-wide sync everything is ordered: the frontier
        dominates the old accesses, prune drops them, and later ops on
        any stream stay race-free."""
        rt, san = machine
        s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
        dst = rt.cudaMalloc(4096)
        one = np.zeros(1, dtype=np.uint8)
        for i in range(HISTORY_LIMIT + 20):
            rt.cudaMemcpy(dst, one, 1, kind="h2d", stream=s1,
                          async_=True, dst_offset=i)
        rt.cudaDeviceSynchronize()
        # Push past the limit again so _prune runs with the frontier
        # now dominating the pre-sync accesses.
        for i in range(HISTORY_LIMIT + 20):
            rt.cudaMemcpy(dst, one, 1, kind="h2d", stream=s2,
                          async_=True, dst_offset=i)
        assert not san.hazards
        (st,) = [
            s for s in san._buffers.values() if s.size == 4096
        ]
        # The pre-sync generation was provably dead and must be gone.
        assert len(st.accesses) <= HISTORY_LIMIT + 20


class TestPathologicalTail:
    def test_summarization_bounds_history_and_keeps_detection(self,
                                                              machine):
        """> 4×HISTORY_LIMIT live, never-synchronized, same-stream
        disjoint writes: exact compaction cannot shrink them, so span
        summarization must bound the history — and the summarized
        history must still catch a cross-stream race."""
        rt, san = machine
        s1 = rt.cudaStreamCreate()
        n = 4 * HISTORY_LIMIT + 8
        dst = rt.cudaMalloc(2 * n)
        one = np.zeros(1, dtype=np.uint8)
        for i in range(n):
            rt.cudaMemcpy(dst, one, 1, kind="h2d", stream=s1,
                          async_=True, dst_offset=2 * i)
        assert not san.hazards
        assert san.report.history_compactions >= 1
        assert san.report.history_summarized >= 1
        (st,) = [s for s in san._buffers.values() if s.size == 2 * n]
        assert len(st.accesses) <= 4 * HISTORY_LIMIT
        s2 = rt.cudaStreamCreate()
        rt.cudaMemcpy(dst, one, 1, kind="h2d", stream=s2, async_=True)
        assert races(san), "summarized history lost a live race"

    def test_exact_compaction_alone_is_silent(self, machine):
        """Same-stream *overwrites* of one range compact exactly: no
        summarization, no false races afterwards."""
        rt, san = machine
        s1 = rt.cudaStreamCreate()
        dst = rt.cudaMalloc(4096)
        chunk = np.zeros(64, dtype=np.uint8)
        for _ in range(4 * HISTORY_LIMIT + 8):
            rt.cudaMemcpy(dst, chunk, 64, kind="h2d", stream=s1,
                          async_=True)
        assert not san.hazards
        assert san.report.history_summarized == 0
        rt.cudaStreamSynchronize(s1)
        s2 = rt.cudaStreamCreate()
        rt.cudaMemcpy(dst, chunk, 64, kind="h2d", stream=s2, async_=True)
        assert not san.hazards
