"""Racecheck: cross-stream hazards found, synchronized patterns not."""

import numpy as np
import pytest

from repro.cuda.api import ManagedUse
from repro.sanitizer.planted import _machine


@pytest.fixture
def machine():
    return _machine()


def kinds(san):
    return {(h.checker, h.kind) for h in san.hazards}


class TestRaces:
    def test_cross_stream_ww_copy_flagged(self, machine):
        rt, san = machine
        s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
        dst = rt.cudaMalloc(4096)
        data = np.zeros(4096, dtype=np.uint8)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1, async_=True)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s2, async_=True)
        assert ("racecheck", "write-write") in kinds(san)
        (h,) = [x for x in san.hazards if x.checker == "racecheck"]
        assert set(h.stream_sids) == {s1.sid, s2.sid}
        assert "cudaEventRecord" in h.missing_edge
        assert "cudaStreamWaitEvent" in h.missing_edge

    def test_disjoint_ranges_not_flagged(self, machine):
        rt, san = machine
        s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
        dst = rt.cudaMalloc(8192)
        data = np.zeros(4096, dtype=np.uint8)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1, async_=True)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s2, async_=True,
                      dst_offset=4096)
        assert not san.hazards

    def test_same_stream_not_flagged(self, machine):
        rt, san = machine
        s1 = rt.cudaStreamCreate()
        dst = rt.cudaMalloc(4096)
        data = np.zeros(4096, dtype=np.uint8)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1, async_=True)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1, async_=True)
        assert not san.hazards

    def test_event_edge_suppresses_race(self, machine):
        rt, san = machine
        s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
        dst = rt.cudaMalloc(4096)
        data = np.zeros(4096, dtype=np.uint8)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1, async_=True)
        e = rt.cudaEventCreate()
        rt.cudaEventRecord(e, s1)
        rt.cudaStreamWaitEvent(s2, e)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s2, async_=True)
        assert not san.hazards

    def test_stream_sync_suppresses_race(self, machine):
        rt, san = machine
        s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
        dst = rt.cudaMalloc(4096)
        data = np.zeros(4096, dtype=np.uint8)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1, async_=True)
        rt.cudaStreamSynchronize(s1)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s2, async_=True)
        assert not san.hazards

    def test_default_stream_barrier_suppresses_race(self, machine):
        """Legacy stream-0 ops serialize with everything — both ways."""
        rt, san = machine
        s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
        dst = rt.cudaMalloc(4096)
        data = np.zeros(4096, dtype=np.uint8)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1, async_=True)
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", async_=True)  # stream 0
        rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s2, async_=True)
        assert not san.hazards

    def test_kernel_read_vs_copy_write_flagged(self, machine):
        rt, san = machine
        s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
        m = rt.cudaMallocManaged(65536)
        rt.cudaLaunchKernel(
            "k", stream=s1, duration_ns=1e6,
            managed=[ManagedUse(m, 0, 128, mode="w")],
        )
        rt.cudaLaunchKernel(
            "k2", stream=s2, duration_ns=1e6,
            managed=[ManagedUse(m, 256, 128, mode="r")],
        )
        assert ("racecheck", "read-write") in kinds(san)

    def test_uvm_page_granularity(self, machine):
        """Disjoint byte ranges on one UVM page still race (the CRUM
        shadow-page failure); disjoint pages do not."""
        rt, san = machine
        s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
        m = rt.cudaMallocManaged(2 * 65536)
        rt.cudaLaunchKernel(
            "k", stream=s1, duration_ns=1e6,
            managed=[ManagedUse(m, 0, 64, mode="w")],
        )
        rt.cudaLaunchKernel(
            "k2", stream=s2, duration_ns=1e6,
            managed=[ManagedUse(m, 65536, 64, mode="w")],  # other page
        )
        assert not san.hazards
        rt.cudaLaunchKernel(
            "k2", stream=s2, duration_ns=1e6,
            managed=[ManagedUse(m, 4096, 64, mode="w")],  # same page as k
        )
        assert ("racecheck", "write-write") in kinds(san)

    def test_hazards_deduplicated(self, machine):
        rt, san = machine
        s1, s2 = rt.cudaStreamCreate(), rt.cudaStreamCreate()
        dst = rt.cudaMalloc(4096)
        data = np.zeros(4096, dtype=np.uint8)
        for _ in range(3):
            rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s1,
                          async_=True)
            rt.cudaMemcpy(dst, data, 4096, kind="h2d", stream=s2,
                          async_=True)
        races = [h for h in san.hazards if h.checker == "racecheck"]
        # Many racing pairs collapse to one report per ordered stream
        # pair — not one per conflicting op pair.
        assert len(races) == 2


class TestRestartContinuity:
    def test_clocks_survive_session_restart(self):
        """A race spanning a checkpoint/restart boundary is still a race:
        the sanitizer's logical timeline continues across the restart."""
        from repro.core.session import CracSession
        from repro.cuda.api import FatBinary
        from repro.sanitizer import Sanitizer

        session = CracSession()
        san = session.enable_sanitizer(Sanitizer())
        backend = session.backend
        backend.register_app_binary(FatBinary("san.fatbin", ("k",)))
        p = backend.malloc(4096)
        backend.memset(p, 0, 4096)
        backend.device_synchronize()
        image = session.checkpoint()
        session.kill()
        session.restart(image)
        rt2 = session.split.runtime
        assert rt2.sanitizer is san
        # New work on the restarted runtime keeps feeding the same report.
        before = san.report.ops_instrumented
        backend.device_synchronize()
        assert san.report.ops_instrumented > before
