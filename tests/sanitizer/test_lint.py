"""Determinism-lint rules: positives, negatives, suppression, scoping."""

import textwrap

from repro.sanitizer.lint import format_findings, lint_file, lint_package


def lint_src(tmp_path, source, rel="repro/cuda/api.py"):
    """Lint ``source`` as if it lived at repo-relative path ``rel``."""
    f = tmp_path / rel
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(textwrap.dedent(source))
    return lint_file(f, rel_to=tmp_path)


def rules(findings):
    return [f.rule for f in findings]


class TestNondeterminism:
    def test_global_random_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            import random
            x = random.random()
            """)
        assert rules(out) == ["nondeterminism"]
        assert out[0].line == 2

    def test_wall_clock_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            import time
            t = time.perf_counter()
            """)
        assert rules(out) == ["nondeterminism"]

    def test_datetime_now_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            import datetime
            t = datetime.datetime.now()
            """)
        assert rules(out) == ["nondeterminism"]

    def test_legacy_np_random_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            import numpy as np
            x = np.random.rand(4)
            """)
        assert rules(out) == ["nondeterminism"]

    def test_seeded_streams_allowed(self, tmp_path):
        out = lint_src(tmp_path, """\
            import random
            import numpy as np
            rng = random.Random(7)
            x = rng.random()
            g = np.random.default_rng(7)
            y = g.standard_normal(4)
            """)
        assert out == []

    def test_suppression_marker(self, tmp_path):
        out = lint_src(tmp_path, """\
            import time
            t = time.time()  # lint: allow
            """)
        assert out == []


class TestRawRaise:
    def test_raw_raise_in_cuda_path_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            def f(x):
                if x < 0:
                    raise ValueError("negative")
            """)
        assert rules(out) == ["raw-raise"]

    def test_raw_raise_outside_cuda_path_ignored(self, tmp_path):
        out = lint_src(tmp_path, """\
            def f(x):
                if x < 0:
                    raise ValueError("negative")
            """, rel="repro/harness/runner.py")
        assert out == []

    def test_taxonomy_raise_allowed(self, tmp_path):
        out = lint_src(tmp_path, """\
            from repro.cuda.errors import CudaErrorCode, cuda_error

            def f(x):
                if x < 0:
                    raise cuda_error(CudaErrorCode.INVALID_VALUE, "neg")
            """)
        assert out == []

    def test_bare_reraise_allowed(self, tmp_path):
        out = lint_src(tmp_path, """\
            def f(x):
                try:
                    return x()
                except Exception:
                    raise
            """)
        assert out == []


class TestDictIteration:
    def test_items_iter_in_capture_fn_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            def capture_buffers(bufs):
                out = []
                for k, v in bufs.items():
                    out.append((k, v))
                return out
            """, rel="repro/dmtcp/image.py")
        assert rules(out) == ["dict-iteration"]

    def test_sorted_items_allowed(self, tmp_path):
        out = lint_src(tmp_path, """\
            def capture_buffers(bufs):
                return [kv for kv in sorted(bufs.items())]
            """, rel="repro/dmtcp/image.py")
        assert out == []

    def test_non_capture_fn_ignored(self, tmp_path):
        out = lint_src(tmp_path, """\
            def lookup(bufs):
                for k, v in bufs.items():
                    pass
            """, rel="repro/dmtcp/image.py")
        assert out == []

    def test_non_capture_module_ignored(self, tmp_path):
        out = lint_src(tmp_path, """\
            def capture_all(bufs):
                for k in bufs.keys():
                    pass
            """, rel="repro/harness/runner.py")
        assert out == []


class TestAliasedImports:
    """Regression: the old literal matcher missed import aliasing."""

    def test_from_time_import_time_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            from time import time
            t = time()
            """)
        assert rules(out) == ["nondeterminism"]
        assert "time.time" in out[0].message
        assert "written 'time'" in out[0].message

    def test_from_time_import_perf_counter_aliased(self, tmp_path):
        out = lint_src(tmp_path, """\
            from time import perf_counter as clock
            t = clock()
            """)
        assert rules(out) == ["nondeterminism"]
        assert "time.perf_counter" in out[0].message

    def test_numpy_random_module_alias_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            import numpy.random as npr
            x = npr.rand(4)
            """)
        assert rules(out) == ["nondeterminism"]
        assert "numpy.random.rand" in out[0].message

    def test_from_random_import_randint_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            from random import randint
            n = randint(0, 9)
            """)
        assert rules(out) == ["nondeterminism"]

    def test_aliased_call_respects_suppression(self, tmp_path):
        out = lint_src(tmp_path, """\
            from time import perf_counter as clock
            t = clock()  # lint: allow
            """)
        assert out == []

    def test_unrelated_alias_not_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            from os.path import join as time
            p = time("a", "b")
            """)
        assert out == []


class TestRestoreFunctions:
    """Regression: restore/load paths get the same ordering rules."""

    def test_restore_fn_dict_iteration_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            def restore_buffers(bufs):
                for k, v in bufs.items():
                    pass
            """, rel="repro/dmtcp/image.py")
        assert rules(out) == ["dict-iteration"]

    def test_import_generation_fn_flagged(self, tmp_path):
        out = lint_src(tmp_path, """\
            def import_generation(record):
                return {k: v for k, v in record.items()}
            """, rel="repro/dmtcp/store.py")
        assert rules(out) == ["dict-iteration"]

    def test_restore_sorted_iteration_clean(self, tmp_path):
        out = lint_src(tmp_path, """\
            def rehydrate(bufs):
                return [kv for kv in sorted(bufs.items())]
            """, rel="repro/dmtcp/image.py")
        assert out == []


class TestHarness:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        out = lint_src(tmp_path, "def f(:\n")
        assert rules(out) == ["syntax"]

    def test_format_findings(self, tmp_path):
        out = lint_src(tmp_path, """\
            import time
            t = time.time()
            """)
        text = format_findings(out)
        assert "repro/cuda/api.py:2" in text
        assert "[nondeterminism]" in text
        assert format_findings([]) == "lint: clean"

    def test_shipping_package_is_clean(self):
        """The gate's own scope: src/repro must lint clean."""
        assert lint_package() == []
