"""Tests for sparse buffer contents and the deterministic arena allocator."""

import numpy as np
import pytest

from repro.errors import CudaError
from repro.gpu.memory import (
    ALLOC_ALIGN,
    ARENA_CHUNK,
    ArenaAllocator,
    PagedContents,
)


class TestPagedContents:
    def test_holes_read_as_fill(self):
        c = PagedContents(1 << 30)  # 1 GB virtual, no RAM
        assert c.read_bytes(123456, 8) == b"\0" * 8
        assert c.backed_bytes == 0

    def test_write_read_roundtrip(self):
        c = PagedContents(4096)
        c.write_bytes(100, b"hello")
        assert c.read_bytes(100, 5) == b"hello"

    def test_view_in_place_mutation(self):
        c = PagedContents(1024)
        v = c.view(0, 1024, dtype=np.float32)
        v[:] = 1.5
        assert np.all(c.view(0, 1024, dtype=np.float32) == 1.5)

    def test_view_exact_match_is_stable(self):
        c = PagedContents(1024)
        v1 = c.view(0, 1024)
        v2 = c.view(0, 1024)
        v1[0] = 42
        assert v2[0] == 42  # same storage

    def test_overlapping_views_consolidate(self):
        c = PagedContents(1000)
        c.view(0, 500)[:] = 1
        c.view(400, 500)[:] = 2
        assert c.read_bytes(0, 400) == b"\x01" * 400
        assert c.read_bytes(400, 500) == b"\x02" * 500

    def test_fill_clears_spans(self):
        c = PagedContents(10_000)
        c.write_bytes(0, b"x" * 100)
        c.fill(7)
        assert c.read_bytes(0, 3) == b"\x07\x07\x07"
        assert c.backed_bytes == 0

    def test_out_of_bounds_rejected(self):
        c = PagedContents(100)
        with pytest.raises(CudaError):
            c.view(90, 20)

    def test_snapshot_restore_roundtrip(self):
        c = PagedContents(4096)
        c.write_bytes(10, b"state")
        snap = c.snapshot()
        c.write_bytes(10, b"XXXXX")
        c.restore(snap)
        assert c.read_bytes(10, 5) == b"state"

    def test_snapshot_is_deep(self):
        c = PagedContents(4096)
        c.write_bytes(0, b"aaaa")
        snap = c.snapshot()
        c.write_bytes(0, b"bbbb")
        assert snap["spans"][0].tobytes()[:4] == b"aaaa"

    def test_equal_contents_same(self):
        a, b = PagedContents(1000), PagedContents(1000)
        a.write_bytes(10, b"zz")
        b.write_bytes(10, b"zz")
        assert a.equal_contents(b)

    def test_equal_contents_differs(self):
        a, b = PagedContents(1000), PagedContents(1000)
        a.write_bytes(10, b"zz")
        b.write_bytes(10, b"zy")
        assert not a.equal_contents(b)

    def test_equal_contents_layout_independent(self):
        a, b = PagedContents(1000), PagedContents(1000)
        a.write_bytes(0, b"\0" * 100)  # materialized zeros
        # b leaves the same range unmaterialized (fill 0)
        assert a.equal_contents(b)

    def test_equal_contents_different_fill(self):
        a, b = PagedContents(1000), PagedContents(1000)
        b.fill(9)
        assert not a.equal_contents(b)


def make_allocator(capacity=1 << 30):
    next_addr = [0x1000_0000]
    mmaps = []

    def mmap_fn(size):
        addr = next_addr[0]
        next_addr[0] += (size + 0xFFFF) & ~0xFFFF
        mmaps.append((addr, size))
        return addr

    alloc = ArenaAllocator(mmap_fn, capacity)
    alloc._test_mmaps = mmaps
    return alloc


class TestArenaAllocator:
    def test_first_malloc_creates_large_arena(self):
        a = make_allocator()
        a.alloc(1024)
        assert a.arena_bytes >= ARENA_CHUNK  # §3.2.1: big arena up front

    def test_first_malloc_issues_many_mmaps(self):
        """§3.2.3: one cudaMalloc may make multiple mmap calls."""
        a = make_allocator()
        a.alloc(1024)
        assert a.mmap_calls > 1

    def test_second_malloc_issues_no_mmap(self):
        """§3.2.1: subsequent cudaMalloc may not call mmap at all."""
        a = make_allocator()
        a.alloc(1024)
        before = a.mmap_calls
        a.alloc(2048)
        assert a.mmap_calls == before

    def test_alignment(self):
        a = make_allocator()
        p1 = a.alloc(1)
        p2 = a.alloc(1)
        assert p1 % ALLOC_ALIGN == 0
        assert p2 % ALLOC_ALIGN == 0
        assert p2 - p1 == ALLOC_ALIGN

    def test_determinism_same_sequence_same_addresses(self):
        """The property CRAC's log-and-replay relies on (§3.2.4)."""
        seqs = []
        for _ in range(2):
            a = make_allocator()
            addrs = [a.alloc(n) for n in (100, 5000, 64, 1 << 20)]
            a.free(addrs[1])
            addrs.append(a.alloc(3000))
            seqs.append(addrs)
        assert seqs[0] == seqs[1]

    def test_free_then_alloc_reuses_space(self):
        a = make_allocator()
        p1 = a.alloc(4096)
        a.free(p1)
        p2 = a.alloc(4096)
        assert p2 == p1

    def test_free_unknown_pointer_raises(self):
        a = make_allocator()
        with pytest.raises(CudaError):
            a.free(0xDEAD)

    def test_oom_when_capacity_exceeded(self):
        a = make_allocator(capacity=1 << 20)
        with pytest.raises(CudaError):
            a.alloc(2 << 20)

    def test_active_bytes_tracks_live_allocations(self):
        a = make_allocator()
        p = a.alloc(1000)
        assert a.active_bytes == 1024  # aligned
        a.free(p)
        assert a.active_bytes == 0

    def test_coalescing_allows_large_realloc(self):
        a = make_allocator(capacity=ARENA_CHUNK)
        half = ARENA_CHUNK // 2
        p1 = a.alloc(half - 1024)
        p2 = a.alloc(half - 1024)
        a.free(p1)
        a.free(p2)
        # Without coalescing this would need a second arena (over capacity).
        p3 = a.alloc(ARENA_CHUNK - 4096)
        assert p3 == p1

    def test_large_allocation_gets_dedicated_arena(self):
        a = make_allocator(capacity=1 << 31)
        a.alloc(16)  # creates the initial arena
        p = a.alloc(ARENA_CHUNK * 2)  # cannot fit: grows by a new arena
        assert p in a.active
        assert a.arena_bytes >= ARENA_CHUNK * 3
