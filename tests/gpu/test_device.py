"""Tests for the virtual-time GPU engine: streams, concurrency, copies."""

import pytest

from repro.errors import CudaError
from repro.gpu import GPU_SPECS, Event, GpuDevice, Stream


@pytest.fixture
def dev():
    return GpuDevice(GPU_SPECS["V100"])


def make_streams(dev, n):
    streams = [Stream() for _ in range(n)]
    for s in streams:
        dev.register_stream(s)
    return streams


class TestStreamOrdering:
    def test_ops_on_one_stream_serialize(self, dev):
        (s,) = make_streams(dev, 1)
        e1 = dev.enqueue_kernel(s, 1000, at_ns=0)
        e2 = dev.enqueue_kernel(s, 1000, at_ns=0)
        assert e2 == e1 + 1000

    def test_ops_on_two_streams_overlap(self, dev):
        a, b = make_streams(dev, 2)
        ea = dev.enqueue_kernel(a, 1000, at_ns=0)
        eb = dev.enqueue_kernel(b, 1000, at_ns=0)
        assert ea == eb == 1000  # concurrent

    def test_submission_time_lower_bounds_start(self, dev):
        (s,) = make_streams(dev, 1)
        end = dev.enqueue_kernel(s, 1000, at_ns=5000)
        assert end == 6000

    def test_stream_ready_reflects_completion(self, dev):
        (s,) = make_streams(dev, 1)
        dev.enqueue_kernel(s, 777, at_ns=0)
        assert dev.stream_ready(s) == 777


class TestConcurrencyLimit:
    def test_concurrent_kernel_limit_enforced(self):
        spec = GPU_SPECS["V100"]
        dev = GpuDevice(spec)
        n = spec.max_concurrent_kernels
        streams = make_streams(dev, n + 1)
        ends = [dev.enqueue_kernel(s, 1000, at_ns=0) for s in streams]
        # First `n` run concurrently; the (n+1)-th waits for a slot.
        assert all(e == 1000 for e in ends[:n])
        assert ends[n] == 2000

    def test_slots_free_as_kernels_finish(self, dev):
        limit = dev.spec.max_concurrent_kernels
        streams = make_streams(dev, limit + 1)
        for s in streams[:limit]:
            dev.enqueue_kernel(s, 1000, at_ns=0)
        # Submitted after the others finished: no queueing.
        end = dev.enqueue_kernel(streams[limit], 500, at_ns=2000)
        assert end == 2500

    def test_128_concurrent_kernels_on_v100(self, dev):
        """The paper's max-stream experiment: 128 concurrent kernels."""
        streams = make_streams(dev, 128)
        ends = [dev.enqueue_kernel(s, 10_000, at_ns=0) for s in streams]
        assert all(e == 10_000 for e in ends)


class TestDefaultStream:
    def test_default_stream_waits_for_all(self, dev):
        default = Stream(sid=0)
        dev.register_stream(default)
        (other,) = make_streams(dev, 1)
        dev.enqueue_kernel(other, 5000, at_ns=0)
        end = dev.enqueue_kernel(default, 100, at_ns=0)
        assert end == 5100

    def test_other_streams_wait_for_default(self, dev):
        default = Stream(sid=0)
        dev.register_stream(default)
        dev.enqueue_kernel(default, 5000, at_ns=0)
        (other,) = make_streams(dev, 1)
        end = dev.enqueue_kernel(other, 100, at_ns=0)
        assert end == 5100


class TestCopyEngines:
    def test_copies_on_same_engine_serialize_across_streams(self, dev):
        a, b = make_streams(dev, 2)
        e1 = dev.enqueue_copy(a, 12_000_000, "h2d", at_ns=0)  # ~1 ms
        e2 = dev.enqueue_copy(b, 12_000_000, "h2d", at_ns=0)
        assert e2 > e1
        assert e2 >= 2 * (e1 - 0) - 1  # back-to-back on one engine

    def test_h2d_and_d2h_engines_are_independent(self, dev):
        a, b = make_streams(dev, 2)
        e1 = dev.enqueue_copy(a, 12_000_000, "h2d", at_ns=0)
        e2 = dev.enqueue_copy(b, 12_000_000, "d2h", at_ns=0)
        assert abs(e1 - e2) < 1.0  # fully overlapped

    def test_copy_overlaps_kernel(self, dev):
        a, b = make_streams(dev, 2)
        ek = dev.enqueue_kernel(a, 1_000_000, at_ns=0)
        ec = dev.enqueue_copy(b, 12_000, "h2d", at_ns=0)
        assert ec < ek  # copy did not wait for the kernel

    def test_unknown_copy_kind_rejected(self, dev):
        (s,) = make_streams(dev, 1)
        with pytest.raises(CudaError):
            dev.enqueue_copy(s, 10, "x2y", at_ns=0)

    def test_copy_bytes_accounted(self, dev):
        (s,) = make_streams(dev, 1)
        dev.enqueue_copy(s, 1000, "h2d", at_ns=0)
        dev.enqueue_copy(s, 500, "d2h", at_ns=0)
        assert dev.copied_bytes["h2d"] == 1000
        assert dev.copied_bytes["d2h"] == 500


class TestEvents:
    def test_event_records_stream_completion_time(self, dev):
        (s,) = make_streams(dev, 1)
        dev.enqueue_kernel(s, 1234, at_ns=0)
        ev = Event()
        dev.record_event(ev, s, at_ns=0)
        assert ev.recorded
        assert ev.timestamp_ns == 1234

    def test_stream_wait_event_orders_across_streams(self, dev):
        a, b = make_streams(dev, 2)
        dev.enqueue_kernel(a, 9000, at_ns=0)
        ev = Event()
        dev.record_event(ev, a, at_ns=0)
        dev.stream_wait_event(b, ev)
        end = dev.enqueue_kernel(b, 100, at_ns=0)
        assert end == 9100

    def test_elapsed_ms(self, dev):
        (s,) = make_streams(dev, 1)
        e1, e2 = Event(), Event()
        dev.record_event(e1, s, at_ns=0)
        dev.enqueue_kernel(s, 5_000_000, at_ns=0)
        dev.record_event(e2, s, at_ns=0)
        assert e2.elapsed_ms_since(e1) == pytest.approx(5.0)

    def test_elapsed_on_unrecorded_event_raises(self):
        e1, e2 = Event(), Event()
        with pytest.raises(CudaError):
            e2.elapsed_ms_since(e1)


class TestSynchronize:
    def test_synchronize_all_covers_every_stream(self, dev):
        a, b = make_streams(dev, 2)
        dev.enqueue_kernel(a, 100, at_ns=0)
        dev.enqueue_kernel(b, 999, at_ns=0)
        assert dev.synchronize_all() == 999

    def test_kernel_accounting(self, dev):
        (s,) = make_streams(dev, 1)
        dev.enqueue_kernel(s, 100, at_ns=0)
        dev.enqueue_kernel(s, 200, at_ns=0)
        assert dev.total_kernels == 2
        assert dev.total_kernel_ns == 300
