"""Property-based tests for GPU engine and allocator invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CudaError
from repro.gpu import GPU_SPECS, ArenaAllocator, GpuDevice, Stream


def make_allocator():
    next_addr = [0x2000_0000]

    def mmap_fn(size):
        addr = next_addr[0]
        next_addr[0] += (size + 0xFFFF) & ~0xFFFF
        return addr

    return ArenaAllocator(mmap_fn, 1 << 32)


alloc_ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=1, max_value=1 << 22)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=30)),
    ),
    max_size=60,
)


@settings(max_examples=150)
@given(alloc_ops)
def test_allocator_determinism(ops):
    """Two allocators fed the same op sequence give identical addresses."""
    traces = []
    for _ in range(2):
        a = make_allocator()
        live = []
        trace = []
        for kind, arg in ops:
            if kind == "alloc":
                p = a.alloc(arg)
                trace.append(p)
                live.append(p)
            elif live:
                idx = arg % len(live)
                a.free(live.pop(idx))
        traces.append(trace)
    assert traces[0] == traces[1]


@settings(max_examples=150)
@given(alloc_ops)
def test_allocator_live_allocations_never_overlap(ops):
    a = make_allocator()
    live = []
    for kind, arg in ops:
        if kind == "alloc":
            try:
                live.append((a.alloc(arg), arg))
            except CudaError:
                pass
        elif live:
            idx = arg % len(live)
            p, _ = live.pop(idx)
            a.free(p)
    spans = sorted((p, p + n) for p, n in live)
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2


@settings(max_examples=100)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),  # stream index
            st.integers(min_value=1, max_value=100_000),  # duration
            st.integers(min_value=0, max_value=1_000_000),  # submit time
        ),
        max_size=40,
    )
)
def test_stream_timelines_are_monotone(ops):
    """Within a stream, completion times never decrease; kernels never
    finish before their submission time + duration."""
    dev = GpuDevice(GPU_SPECS["V100"])
    streams = [Stream() for _ in range(8)]
    for s in streams:
        dev.register_stream(s)
    last_end = {s.sid: 0.0 for s in streams}
    for idx, dur, at in ops:
        s = streams[idx]
        end = dev.enqueue_kernel(s, dur, at_ns=at)
        assert end >= at + dur
        assert end >= last_end[s.sid]
        last_end[s.sid] = end


@settings(max_examples=100)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.sampled_from(["h2d", "d2h"]),
            st.integers(min_value=1, max_value=1 << 20),
        ),
        max_size=30,
    )
)
def test_copy_engine_serializes(ops):
    """Per engine, copies never overlap (ends are strictly ordered)."""
    dev = GpuDevice(GPU_SPECS["V100"])
    streams = [Stream() for _ in range(4)]
    for s in streams:
        dev.register_stream(s)
    last = {"h2d": 0.0, "d2h": 0.0}
    for idx, kind, nbytes in ops:
        end = dev.enqueue_copy(streams[idx], nbytes, kind, at_ns=0)
        assert end > last[kind]
        last[kind] = end
