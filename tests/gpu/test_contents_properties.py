"""Property-based tests for PagedContents (sparse buffer contents)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import PagedContents

SIZE = 1 << 16

write_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=SIZE - 1),
        st.binary(min_size=1, max_size=2048),
    ),
    max_size=25,
)


def reference_model(ops):
    """A dense numpy reference of the same writes."""
    ref = np.zeros(SIZE, dtype=np.uint8)
    for off, data in ops:
        n = min(len(data), SIZE - off)
        ref[off : off + n] = np.frombuffer(data[:n], dtype=np.uint8)
    return ref


def apply(contents, ops):
    for off, data in ops:
        n = min(len(data), SIZE - off)
        contents.write_bytes(off, data[:n])


@settings(max_examples=120)
@given(write_ops)
def test_matches_dense_reference(ops):
    c = PagedContents(SIZE)
    apply(c, ops)
    ref = reference_model(ops)
    assert c.read_bytes(0, SIZE) == ref.tobytes()


@settings(max_examples=100)
@given(write_ops)
def test_snapshot_restore_roundtrip(ops):
    c = PagedContents(SIZE)
    apply(c, ops)
    before = c.read_bytes(0, SIZE)
    snap = c.snapshot()
    c.fill(0xEE)  # destroy
    c.restore(snap)
    assert c.read_bytes(0, SIZE) == before


@settings(max_examples=100)
@given(write_ops, write_ops)
def test_equal_contents_agrees_with_bytes(ops_a, ops_b):
    a, b = PagedContents(SIZE), PagedContents(SIZE)
    apply(a, ops_a)
    apply(b, ops_b)
    bytes_equal = a.read_bytes(0, SIZE) == b.read_bytes(0, SIZE)
    assert a.equal_contents(b) == bytes_equal


@settings(max_examples=100)
@given(
    write_ops,
    st.integers(min_value=0, max_value=SIZE // 2),
    st.integers(min_value=0, max_value=SIZE // 2),
    st.integers(min_value=1, max_value=SIZE // 2),
)
def test_copy_from_matches_dense_copy(ops, src_off, dst_off, n):
    src = PagedContents(SIZE)
    apply(src, ops)
    dst = PagedContents(SIZE)
    dst.write_bytes(0, b"\x55" * 4096)  # pre-existing destination data
    ref_dst = np.frombuffer(dst.read_bytes(0, SIZE), dtype=np.uint8).copy()
    ref_src = np.frombuffer(src.read_bytes(0, SIZE), dtype=np.uint8)

    dst.copy_from(src, src_off, dst_off, n)
    ref_dst[dst_off : dst_off + n] = ref_src[src_off : src_off + n]
    assert dst.read_bytes(0, SIZE) == ref_dst.tobytes()


@settings(max_examples=60)
@given(write_ops)
def test_views_never_alias_incorrectly(ops):
    """A view written through is observed by read_bytes."""
    c = PagedContents(SIZE)
    apply(c, ops)
    v = c.view(100, 64)
    v[:] = 0xAB
    assert c.read_bytes(100, 64) == b"\xab" * 64
