"""Unit tests for the calibrated cost model (gpu/timing.py)."""

import pytest

from repro.errors import CudaError
from repro.gpu.timing import DEFAULT_HOST_COSTS, GPU_SPECS, GpuSpec, NS_PER_S


class TestGpuSpecs:
    def test_both_paper_gpus_present(self):
        assert "V100" in GPU_SPECS and "K600" in GPU_SPECS

    def test_v100_matches_paper_hardware(self):
        v100 = GPU_SPECS["V100"]
        assert v100.compute_capability == (7, 0)
        assert v100.memory_bytes == 32 << 30
        # "128 is the maximum concurrent kernel limit" for CC 7.0 (§4.4.2).
        assert v100.max_concurrent_kernels == 128

    def test_k600_is_the_smaller_part(self):
        v100, k600 = GPU_SPECS["V100"], GPU_SPECS["K600"]
        assert k600.memory_bytes == 1 << 30  # "1 GB of RAM" (§4.1)
        assert k600.flops < v100.flops / 10
        assert k600.max_concurrent_kernels < v100.max_concurrent_kernels


class TestKernelCost:
    def test_compute_bound(self):
        spec = GPU_SPECS["V100"]
        # 14 Tflop of work ⇒ ~1 s.
        ns = spec.kernel_cost_ns(flop=spec.flops)
        assert ns == pytest.approx(NS_PER_S + spec.kernel_launch_ns)

    def test_memory_bound(self):
        spec = GPU_SPECS["V100"]
        ns = spec.kernel_cost_ns(flop=1.0, bytes_touched=spec.mem_bw)
        assert ns == pytest.approx(NS_PER_S + spec.kernel_launch_ns)

    def test_roofline_takes_max(self):
        spec = GPU_SPECS["V100"]
        both = spec.kernel_cost_ns(flop=spec.flops, bytes_touched=spec.mem_bw)
        assert both == pytest.approx(NS_PER_S + spec.kernel_launch_ns)

    def test_launch_latency_floor(self):
        spec = GPU_SPECS["V100"]
        assert spec.kernel_cost_ns(flop=0.0) == spec.kernel_launch_ns


class TestCopyCost:
    def test_pcie_for_host_transfers(self):
        spec = GPU_SPECS["V100"]
        one_gb = spec.copy_cost_ns(1 << 30, "h2d")
        assert one_gb == pytest.approx(
            1500 + (1 << 30) / spec.pcie_bw * NS_PER_S
        )

    def test_d2d_uses_device_bandwidth(self):
        spec = GPU_SPECS["V100"]
        assert spec.copy_cost_ns(1 << 30, "d2d") < spec.copy_cost_ns(1 << 30, "h2d")

    def test_unknown_kind_rejected(self):
        with pytest.raises(CudaError):
            GPU_SPECS["V100"].copy_cost_ns(10, "h2h")


class TestHostCosts:
    def test_trampoline_supports_one_percent_claim(self):
        """Per-call trampoline extra (2 syscalls + body) must be well
        under 1% of the inter-call gap at the paper's highest sustained
        call rate (HPGMG's 35K calls/s ⇒ ~28.6 µs between calls)."""
        from repro.linux.process import SYSCALL_NS

        extra = 2 * SYSCALL_NS + DEFAULT_HOST_COSTS.trampoline_body_ns
        assert extra < 28_600 * 0.05

    def test_checkpoint_bandwidths_sane(self):
        c = DEFAULT_HOST_COSTS
        assert c.gzip_bw < c.ckpt_write_bw  # gzip is the bottleneck
        assert 1e9 < c.ckpt_write_bw < 10e9

    def test_startup_under_half_second(self):
        # BFS (2.7 s native) shows ≤14% overhead ⇒ startup ≤ ~0.4 s.
        assert DEFAULT_HOST_COSTS.crac_startup_ns < 0.4e9
