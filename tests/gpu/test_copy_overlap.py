"""Regression tests: overlapping self-copies and the arena byte counter.

``PagedContents.copy_from`` used to reset the destination range to the
fill value *before* reading the source spans — for a self-copy with
overlapping ranges (the device-to-device memmove pattern) that zeroed
part of the source mid-copy. The fix snapshots the backed source bytes
first; these tests pin memmove semantics in both shift directions.

``ArenaAllocator.active_bytes`` is now a running counter (the restart
drain loop polls it per allocation); it must track the recomputed sum
exactly through any alloc/free/reserve interleaving.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import ARENA_CHUNK, ArenaAllocator, PagedContents

SIZE = 1 << 12


def dense(c):
    return np.frombuffer(c.read_bytes(0, c.size), dtype=np.uint8).copy()


class TestOverlappingSelfCopy:
    def _seeded(self):
        c = PagedContents(SIZE)
        rng = np.random.default_rng(7)
        c.write_bytes(100, rng.integers(0, 256, 900, np.uint8).tobytes())
        c.write_bytes(2000, rng.integers(0, 256, 500, np.uint8).tobytes())
        return c

    def test_forward_overlap_matches_memmove(self):
        c = self._seeded()
        before = dense(c)
        c.copy_from(c, src_offset=100, dst_offset=400, nbytes=800)
        expect = before.copy()
        expect[400:1200] = before[100:900]
        assert np.array_equal(dense(c), expect)

    def test_backward_overlap_matches_memmove(self):
        c = self._seeded()
        before = dense(c)
        c.copy_from(c, src_offset=400, dst_offset=100, nbytes=800)
        expect = before.copy()
        expect[100:900] = before[400:1200]
        assert np.array_equal(dense(c), expect)

    def test_overlap_spanning_backed_and_hole(self):
        # Source range straddles a backed span and an unbacked hole:
        # the hole must land as fill bytes, not stale destination data.
        c = self._seeded()
        before = dense(c)
        c.copy_from(c, src_offset=800, dst_offset=900, nbytes=1500)
        expect = before.copy()
        expect[900:2400] = before[800:2300]
        assert np.array_equal(dense(c), expect)

    def test_cross_buffer_copy_unaffected(self):
        a, b = self._seeded(), PagedContents(SIZE)
        b.copy_from(a, src_offset=0, dst_offset=0, nbytes=SIZE)
        assert np.array_equal(dense(b), dense(a))

    @settings(max_examples=120)
    @given(
        st.integers(min_value=0, max_value=SIZE - 1),
        st.integers(min_value=0, max_value=SIZE - 1),
        st.integers(min_value=1, max_value=SIZE),
    )
    def test_self_copy_always_memmove(self, src, dst, n):
        n = min(n, SIZE - max(src, dst))
        if n <= 0:
            return
        c = self._seeded()
        before = dense(c)
        c.copy_from(c, src_offset=src, dst_offset=dst, nbytes=n)
        expect = before.copy()
        expect[dst : dst + n] = before[src : src + n]
        assert np.array_equal(dense(c), expect)


def make_arena(capacity=4 * ARENA_CHUNK):
    state = {"next": 0x7000_0000_0000}

    def mmap_fn(size):
        base = state["next"]
        state["next"] += size
        return base

    return ArenaAllocator(mmap_fn, capacity, extra_mmaps_per_arena=0)


def recomputed_active(arena):
    return sum(arena.active.values())


class TestActiveBytesCounter:
    def test_counter_tracks_alloc_and_free(self):
        a = make_arena()
        assert a.active_bytes == 0
        p1 = a.alloc(4096)
        p2 = a.alloc(10_000)
        assert a.active_bytes == recomputed_active(a)
        a.free(p1)
        assert a.active_bytes == recomputed_active(a)
        a.free(p2)
        assert a.active_bytes == 0

    def test_counter_tracks_reserve(self):
        a = make_arena()
        p = a.alloc(4096)
        a.free(p)
        a.reserve(p, 4096)  # restart replay path
        assert a.active_bytes == recomputed_active(a)
        a.free(p)
        assert a.active_bytes == 0

    @settings(max_examples=80)
    @given(st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]),
                  st.integers(min_value=1, max_value=65536)),
        max_size=40,
    ))
    def test_counter_equals_recomputed_sum(self, ops):
        a = make_arena()
        live = []
        for kind, n in ops:
            if kind == "alloc":
                live.append(a.alloc(n))
            elif live:
                a.free(live.pop(n % len(live)))
            assert a.active_bytes == recomputed_active(a)
        assert a.active_bytes == recomputed_active(a)
