"""Observational equivalence: vectorized structures vs legacy rebuilds.

The vectorization PR replaced three per-write-rebuild structures with
numpy-backed ones. These properties pin the contract: for any op
sequence, the new structures answer every query byte-for-byte the same
as the old code (kept verbatim in :mod:`repro.gpu.dirty_legacy`).

A reference model (set of offsets / dict offset→epoch) arbitrates when
the two implementations could share a bug.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.dirty_legacy import LegacyDirtyIndex, LegacyWrittenSet
from repro.gpu.intervals import EpochIntervalIndex, SpanSet
from repro.sanitizer.core import _Access, _AccessIndex
from repro.sanitizer.vector_clock import VectorClock

SIZE = 256

span = st.tuples(
    st.integers(min_value=0, max_value=SIZE - 1),
    st.integers(min_value=1, max_value=64),
).map(lambda t: (t[0], min(SIZE, t[0] + t[1])))

dirty_op = st.one_of(
    st.tuples(st.just("mark"), span),
    st.tuples(st.just("clear"), st.lists(span, max_size=3)),
    st.tuples(st.just("clear_all"), st.just(None)),
    st.tuples(st.just("query"), st.just(None)),
)


def replay_both(ops):
    """Drive legacy + vectorized dirty indexes and a dict model through
    the same ops; compare every query; return the final triple."""
    legacy, vector = LegacyDirtyIndex(), EpochIntervalIndex()
    model: dict[int, int] = {}  # offset -> epoch of last write
    epoch = 0
    snap = 0
    for kind, arg in ops:
        if kind == "mark":
            lo, hi = arg
            epoch += 1
            legacy.mark(lo, hi, epoch)
            vector.mark(lo, hi, epoch)
            for off in range(lo, hi):
                model[off] = epoch
        elif kind == "clear":
            legacy.clear(arg, up_to_epoch=snap)
            vector.clear(arg, up_to_epoch=snap)
            for lo, hi in arg:
                for off in range(lo, hi):
                    if model.get(off, 0) <= snap:
                        model.pop(off, None)
        elif kind == "clear_all":
            legacy.clear_all()
            vector.clear_all()
            model.clear()
        else:
            assert legacy.intervals() == vector.intervals()
            assert legacy.spans() == vector.spans()
            assert legacy.byte_count == vector.byte_count
            assert legacy.bytes_since(snap) == vector.bytes_since(snap)
            snap = epoch
    return legacy, vector, model


@settings(max_examples=150)
@given(st.lists(dirty_op, max_size=30))
def test_dirty_index_equivalence(ops):
    legacy, vector, model = replay_both(ops)
    assert legacy.intervals() == vector.intervals()
    assert legacy.spans() == vector.spans()
    assert legacy.byte_count == vector.byte_count
    # Both agree with the per-offset model.
    expected = sorted(model)
    got = [
        off for lo, hi in vector.spans() for off in range(lo, hi)
    ]
    assert got == expected
    for lo, hi, ep in vector.intervals():
        for off in range(lo, hi):
            assert model[off] == ep


@settings(max_examples=150)
@given(st.lists(dirty_op, max_size=30), st.integers(0, 40))
def test_bytes_since_equivalence(ops, since):
    legacy, vector, model = replay_both(ops)
    assert legacy.bytes_since(since) == vector.bytes_since(since)
    assert vector.bytes_since(since) == sum(
        1 for ep in model.values() if ep > since
    )


@settings(max_examples=150)
@given(st.lists(dirty_op, max_size=30), st.sampled_from([16, 64, 128]))
def test_page_epochs_match_intervals(ops, page_size):
    _, vector, model = replay_both(ops)
    per_page = vector.page_epochs(page_size, SIZE)
    n_pages = (SIZE + page_size - 1) // page_size
    assert len(per_page) == n_pages
    for p in range(n_pages):
        lo, hi = p * page_size, min(SIZE, (p + 1) * page_size)
        expect = max(
            (model.get(off, 0) for off in range(lo, hi)), default=0
        )
        assert per_page[p] == expect


written_op = st.one_of(
    st.tuples(st.just("add"), span),
    st.tuples(st.just("holes"), span),
    st.tuples(st.just("covers"), span),
)


@settings(max_examples=150)
@given(st.lists(written_op, max_size=40), st.lists(span, max_size=2))
def test_span_set_equivalence(ops, initial):
    legacy, vector = LegacyWrittenSet(initial), SpanSet(initial)
    covered = {
        off for lo, hi in initial for off in range(lo, hi)
    }
    for kind, (lo, hi) in ops:
        if kind == "add":
            legacy.add(lo, hi)
            vector.add(lo, hi)
            covered.update(range(lo, hi))
        elif kind == "holes":
            assert legacy.holes(lo, hi) == vector.holes(lo, hi)
            missing = [o for o in range(lo, hi) if o not in covered]
            got = [
                o for a, b in vector.holes(lo, hi) for o in range(a, b)
            ]
            assert got == missing
        else:
            assert legacy.covers(lo, hi) == vector.covers(lo, hi)
            assert vector.covers(lo, hi) == all(
                o in covered for o in range(lo, hi)
            )
    assert legacy.spans() == vector.spans()
    assert legacy.byte_count == vector.byte_count
    assert bool(legacy) == bool(vector)


# -- racecheck scan ----------------------------------------------------------

clock = st.dictionaries(
    st.sampled_from([0, 1, 2, 3, "host"]),
    st.integers(min_value=1, max_value=4),
    max_size=4,
).map(VectorClock)

access = st.tuples(
    span, st.booleans(), st.sampled_from([0, 1, 2, 3]), clock
)


def brute_force_races(accesses, lo, hi, write, sid, probe_clock):
    """The pre-vectorization racecheck scan, as a plain loop."""
    rows = []
    for i, a in enumerate(accesses):
        if a.hi <= lo or a.lo >= hi:
            continue
        if not (write or a.write) or a.sid == sid:
            continue
        if a.clock.concurrent_with(probe_clock):
            rows.append(i)
    return rows


@settings(max_examples=150)
@given(st.lists(access, max_size=25), st.lists(access, max_size=8))
def test_race_rows_match_brute_force(recorded, probes):
    index = _AccessIndex()
    accesses = []
    for i, ((lo, hi), write, sid, vc) in enumerate(recorded):
        a = _Access(lo, hi, write, sid, vc, i, f"op{i}")
        accesses.append(a)
        index.add(a)
    for (lo, hi), write, sid, vc in probes:
        assert index.race_rows(lo, hi, sid, write, vc) == (
            brute_force_races(accesses, lo, hi, write, sid, vc)
        )


@settings(max_examples=100)
@given(st.lists(access, max_size=12), st.lists(access, max_size=12),
       st.lists(access, max_size=4))
def test_race_rows_survive_rebuild(first, second, probes):
    """rebuild() after pruning answers like a fresh index."""
    index = _AccessIndex()
    accesses = []
    for i, ((lo, hi), write, sid, vc) in enumerate(first + second):
        a = _Access(lo, hi, write, sid, vc, i, f"op{i}")
        accesses.append(a)
        index.add(a)
    kept = accesses[len(first):]
    index.rebuild(kept)
    fresh = _AccessIndex()
    for a in kept:
        fresh.add(a)
    for (lo, hi), write, sid, vc in probes:
        assert index.race_rows(lo, hi, sid, write, vc) == (
            fresh.race_rows(lo, hi, sid, write, vc)
        )


def test_epoch_regression_rejected():
    """Epochs are the buffer write sequence — monotone by construction;
    the index enforces the precondition its last-write-wins flush
    relies on."""
    from repro.cuda.errors import CudaError

    idx = EpochIntervalIndex()
    idx.mark(0, 10, 5)
    try:
        idx.mark(0, 10, 4)
    except CudaError:
        pass
    else:  # pragma: no cover - failure path
        raise AssertionError("epoch regression accepted")


def test_clock_matrix_widens_mid_append():
    """Appending a clock with many fresh components must survive the
    matrix reallocating while the row is being filled (regression:
    stale row view after _col() widened the storage)."""
    from repro.sanitizer.vector_clock import ClockMatrix

    m = ClockMatrix()
    wide = VectorClock({i: i + 1 for i in range(10)})
    m.append(wide)
    row_leq, q_leq = m.versus(wide)
    assert bool(row_leq[0]) and bool(q_leq[0])
    narrow = VectorClock({0: 1})
    row_leq, q_leq = m.versus(narrow)
    assert not row_leq[0] and bool(q_leq[0])
