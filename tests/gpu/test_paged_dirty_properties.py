"""Property-based tests for PagedContents dirty-span bookkeeping.

The incremental GPU checkpoint path relies on three invariants:

1. every byte that differs from the last commit lies inside
   ``dirty_spans()`` (over-approximation is fine, under is data loss);
2. ``dirty_snapshot()`` applied onto a copy of the last-committed state
   reproduces the current contents exactly (the delta-chain property);
3. the span algebra (``merge_spans``/``subtract_spans``) agrees with a
   plain set-of-offsets model.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import PagedContents, merge_spans, subtract_spans

SIZE = 1 << 15

mutation = st.one_of(
    st.tuples(
        st.just("write"),
        st.integers(min_value=0, max_value=SIZE - 1),
        st.binary(min_size=1, max_size=1024),
    ),
    st.tuples(
        st.just("view"),
        st.integers(min_value=0, max_value=SIZE - 64),
        st.integers(min_value=1, max_value=64),
    ),
    st.tuples(st.just("fill"), st.integers(min_value=0, max_value=255)),
)
mutations = st.lists(mutation, max_size=20)


def apply_ops(c, ops):
    for op in ops:
        if op[0] == "write":
            _, off, data = op
            n = min(len(data), SIZE - off)
            c.write_bytes(off, data[:n])
        elif op[0] == "view":
            _, off, n = op
            c.view(off, n)[:] = 0xC3
        else:
            c.fill(op[1])


def dense(c):
    return np.frombuffer(c.read_bytes(0, SIZE), dtype=np.uint8).copy()


@settings(max_examples=100)
@given(mutations, mutations)
def test_dirty_spans_cover_every_changed_byte(base_ops, ops):
    c = PagedContents(SIZE)
    apply_ops(c, base_ops)
    c.clear_dirty()  # commit point
    committed = dense(c)

    apply_ops(c, ops)
    changed = np.nonzero(dense(c) != committed)[0]
    spans = c.dirty_spans()
    for idx in changed:
        assert any(lo <= idx < hi for lo, hi in spans), (
            f"byte {idx} changed since commit but is not in {spans}"
        )
    assert c.dirty_byte_count == sum(hi - lo for lo, hi in spans)


@settings(max_examples=100)
@given(mutations, mutations)
def test_dirty_snapshot_replays_onto_committed_clone(base_ops, ops):
    c = PagedContents(SIZE)
    apply_ops(c, base_ops)
    c.clear_dirty()

    clone = PagedContents(SIZE)
    clone.write_bytes(0, c.read_bytes(0, SIZE))  # last-committed state

    apply_ops(c, ops)
    clone.apply_delta(c.dirty_snapshot())
    assert clone.read_bytes(0, SIZE) == c.read_bytes(0, SIZE)
    assert clone.equal_contents(c)


@settings(max_examples=60)
@given(mutations, mutations, mutations)
def test_delta_chain_over_two_commits(base_ops, ops1, ops2):
    """Two incremental cuts stack: base + d1 + d2 == live contents."""
    c = PagedContents(SIZE)
    apply_ops(c, base_ops)
    c.clear_dirty()
    clone = PagedContents(SIZE)
    clone.write_bytes(0, c.read_bytes(0, SIZE))

    apply_ops(c, ops1)
    d1 = c.dirty_snapshot()
    c.clear_dirty()
    apply_ops(c, ops2)
    d2 = c.dirty_snapshot()
    c.clear_dirty()

    clone.apply_delta(d1)
    clone.apply_delta(d2)
    assert clone.equal_contents(c)
    assert c.dirty_byte_count == 0


@settings(max_examples=100)
@given(mutations)
def test_partial_clear_leaves_remainder(ops):
    """Clearing only the first captured span keeps the rest dirty."""
    c = PagedContents(SIZE)
    apply_ops(c, ops)
    spans = c.dirty_spans()
    if not spans:
        assert c.dirty_byte_count == 0
        return
    head, rest = spans[:1], spans[1:]
    c.clear_dirty(head)
    assert c.dirty_spans() == rest
    c.clear_dirty()
    assert c.dirty_byte_count == 0


span_list = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=0, max_value=64),
    ).map(lambda t: (t[0], t[0] + t[1])),
    max_size=12,
)


def as_set(spans):
    return {i for lo, hi in spans for i in range(lo, hi)}


@settings(max_examples=150)
@given(span_list)
def test_merge_spans_matches_set_model(spans):
    merged = merge_spans(spans)
    assert as_set(merged) == as_set(spans)
    # Canonical form: sorted, non-empty, non-adjacent.
    for (lo, hi), (lo2, _) in zip(merged, merged[1:]):
        assert lo < hi < lo2
    assert all(lo < hi for lo, hi in merged)


@settings(max_examples=150)
@given(span_list, span_list)
def test_subtract_spans_matches_set_model(base, minus):
    got = subtract_spans(merge_spans(base), merge_spans(minus))
    assert as_set(got) == as_set(base) - as_set(minus)
