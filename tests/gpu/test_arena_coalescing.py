"""Free-block coalescing edge cases in the deterministic arena allocator.

The allocator is first-fit over a sorted free list; ``_insert_free``
coalesces a released block with its right neighbour first, then its
left. These tests pin the merge behaviour at every adjacency shape —
a lost merge silently fragments the arena until a large ``cudaMalloc``
grows a second arena and the restart replay diverges.
"""

import pytest

from repro.errors import CudaError
from repro.gpu.memory import ALLOC_ALIGN, ARENA_CHUNK, ArenaAllocator


def make_arena(capacity=4 * ARENA_CHUNK):
    """Arena with a simple bump-pointer mmap source at 0x7000_0000_0000."""
    state = {"next": 0x7000_0000_0000}

    def mmap_fn(size):
        base = state["next"]
        state["next"] += size
        return base

    return ArenaAllocator(mmap_fn, capacity, extra_mmaps_per_arena=0)


def free_blocks(arena):
    return [(b.start, b.size) for b in arena._free]


class TestCoalescing:
    def test_free_middle_then_neighbours_merges_to_one_block(self):
        a = make_arena()
        p1, p2, p3 = a.alloc(4096), a.alloc(4096), a.alloc(4096)
        tail = free_blocks(a)  # remainder of the first arena chunk
        assert len(tail) == 1
        a.free(p2)  # isolated hole: no neighbour to merge with
        assert len(free_blocks(a)) == 2
        a.free(p1)  # left block merges with the hole (right-merge path)
        assert len(free_blocks(a)) == 2
        assert (p1, 2 * 4096) in free_blocks(a)
        a.free(p3)  # bridges hole and tail: both-neighbour merge
        assert free_blocks(a) == [(p1, ARENA_CHUNK)]

    def test_left_neighbour_merge(self):
        a = make_arena()
        p1, p2 = a.alloc(4096), a.alloc(4096)
        a.alloc(4096)  # keeps the tail from being p2's right neighbour
        a.free(p1)
        a.free(p2)  # merges into the block ending at its start
        assert (p1, 2 * 4096) in free_blocks(a)

    def test_right_neighbour_merge(self):
        a = make_arena()
        p1, p2 = a.alloc(4096), a.alloc(4096)
        a.alloc(4096)
        a.free(p2)
        a.free(p1)  # merges with the block starting at its end
        assert (p1, 2 * 4096) in free_blocks(a)

    def test_nonadjacent_blocks_stay_separate(self):
        a = make_arena()
        p1 = a.alloc(4096)
        a.alloc(4096)
        p3 = a.alloc(4096)
        a.alloc(4096)
        a.free(p1)
        a.free(p3)
        blocks = free_blocks(a)
        assert (p1, 4096) in blocks
        assert (p3, 4096) in blocks

    def test_coalesced_block_satisfies_large_alloc_without_growth(self):
        """The point of coalescing: freed fragments recombine so a
        larger request fits without mmap-ing a second arena."""
        a = make_arena()
        ptrs = [a.alloc(1 << 20) for _ in range(8)]
        big = a.alloc(ARENA_CHUNK - (8 << 20))  # consume the tail
        calls_before = a.mmap_calls
        for p in ptrs:
            a.free(p)
        merged = a.alloc(8 << 20)  # exactly the recombined fragments
        assert merged == ptrs[0]
        assert a.mmap_calls == calls_before
        a.free(merged)
        a.free(big)
        assert free_blocks(a) == [(ptrs[0], ARENA_CHUNK)]

    def test_free_all_returns_arena_to_single_block(self):
        """Interleaved odd/even free order always converges to one
        block per arena chunk."""
        a = make_arena()
        ptrs = [a.alloc(8192) for _ in range(16)]
        for p in ptrs[::2] + ptrs[1::2]:
            a.free(p)
        assert free_blocks(a) == [(ptrs[0], ARENA_CHUNK)]
        assert a.active == {}


class TestBoundaries:
    def test_alignment_rounds_request_up(self):
        a = make_arena()
        p1 = a.alloc(1)  # rounds to ALLOC_ALIGN
        p2 = a.alloc(1)
        assert p2 - p1 == ALLOC_ALIGN

    def test_adjacent_arenas_do_not_merge_across_chunks(self):
        """Two arena chunks from a contiguous mmap source coalesce only
        because the addresses really are adjacent — a gap (bookkeeping
        mmaps) must keep them separate."""
        state = {"next": 0x7000_0000_0000}

        def mmap_fn(size):
            base = state["next"]
            state["next"] += size + (1 << 16)  # guard gap between arenas
            return base

        a = ArenaAllocator(mmap_fn, 4 * ARENA_CHUNK,
                           extra_mmaps_per_arena=0)
        p1 = a.alloc(ARENA_CHUNK)  # fills chunk 1 exactly
        p2 = a.alloc(ARENA_CHUNK)  # forces chunk 2
        a.free(p1)
        a.free(p2)
        assert free_blocks(a) == [(p1, ARENA_CHUNK), (p2, ARENA_CHUNK)]

    def test_exact_fit_removes_free_block(self):
        a = make_arena()
        p1 = a.alloc(4096)
        a.alloc(4096)
        a.free(p1)
        again = a.alloc(4096)  # first-fit: exact-size hole reused
        assert again == p1
        assert all(start != p1 for start, _ in free_blocks(a))

    def test_partial_fit_splits_block(self):
        a = make_arena()
        p1 = a.alloc(8192)
        a.alloc(4096)
        a.free(p1)
        again = a.alloc(4096)  # takes the front of the 8192 hole
        assert again == p1
        assert (p1 + 4096, 4096) in free_blocks(a)

    def test_oversized_request_grows_dedicated_arena(self):
        a = make_arena(capacity=ARENA_CHUNK * 8)
        big = 3 * ARENA_CHUNK
        p = a.alloc(big)
        assert a.arena_bytes >= big
        a.free(p)
        assert (p, a.arena_bytes) in free_blocks(a) or \
            (p, 3 * ARENA_CHUNK) in free_blocks(a)


class TestReserveInteraction:
    def test_reserve_splits_and_free_recoalesces(self):
        a = make_arena()
        a.alloc(4096)  # materialize the first arena chunk
        base = free_blocks(a)[0][0]
        mid = base + (1 << 20)
        a.reserve(mid, 8192)
        assert len(free_blocks(a)) == 2  # hole split around the reserve
        a.free(mid)
        assert free_blocks(a) == [(base, ARENA_CHUNK - 4096)]

    def test_reserve_at_block_start_leaves_no_empty_head(self):
        a = make_arena()
        p1 = a.alloc(4096)
        a.free(p1)
        a.reserve(p1, 4096)  # exactly the recycled hole's head
        assert all(start != p1 for start, _ in free_blocks(a))
        assert a.active[p1] == 4096


class TestErrors:
    def test_double_free_raises(self):
        a = make_arena()
        p = a.alloc(4096)
        a.free(p)
        with pytest.raises(CudaError):
            a.free(p)

    def test_free_list_unchanged_by_invalid_free(self):
        a = make_arena()
        p = a.alloc(4096)
        a.free(p)
        before = free_blocks(a)
        with pytest.raises(CudaError):
            a.free(0xBAD)
        assert free_blocks(a) == before
