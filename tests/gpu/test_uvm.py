"""Tests for the UVM model: residency, migration costs, write tracking."""

import numpy as np
import pytest

from repro.gpu import GPU_SPECS, GpuDevice, ManagedBuffer, Stream, UvmManager
from repro.gpu.uvm import UVM_PAGE, PageLocation


@pytest.fixture
def dev():
    return GpuDevice(GPU_SPECS["V100"])


@pytest.fixture
def uvm(dev):
    return UvmManager(dev)


def make_buf(uvm, size=4 * UVM_PAGE, addr=0x9000_0000):
    buf = ManagedBuffer(addr=addr, size=size)
    uvm.register(buf)
    return buf


class TestResidency:
    def test_fresh_pages_are_host_resident(self, uvm):
        buf = make_buf(uvm)
        assert np.all(buf.residency == int(PageLocation.HOST))

    def test_device_access_migrates_to_device(self, uvm):
        buf = make_buf(uvm)
        cost = uvm.device_access(buf, 0, buf.size)
        assert cost > 0
        assert np.all(buf.residency == int(PageLocation.DEVICE))

    def test_host_access_migrates_back(self, uvm):
        buf = make_buf(uvm)
        uvm.device_access(buf, 0, buf.size)
        cost = uvm.host_access(buf, 0, buf.size, write=True)
        assert cost > 0
        assert np.all(buf.residency == int(PageLocation.HOST))

    def test_access_to_resident_pages_is_free(self, uvm):
        buf = make_buf(uvm)
        assert uvm.host_access(buf, 0, buf.size, write=False) == 0.0

    def test_partial_access_migrates_only_touched_pages(self, uvm):
        buf = make_buf(uvm, size=8 * UVM_PAGE)
        uvm.device_access(buf, 0, UVM_PAGE)  # only page 0
        assert buf.residency[0] == int(PageLocation.DEVICE)
        assert np.all(buf.residency[1:] == int(PageLocation.HOST))

    def test_page_range_boundaries(self, uvm):
        buf = make_buf(uvm, size=4 * UVM_PAGE)
        assert buf.page_range(0, UVM_PAGE) == (0, 0)
        assert buf.page_range(UVM_PAGE - 1, 2) == (0, 1)
        assert buf.page_range(UVM_PAGE, UVM_PAGE) == (1, 1)


class TestCosts:
    def test_fault_cost_scales_with_pages(self, uvm):
        buf = make_buf(uvm, size=16 * UVM_PAGE)
        c1 = uvm.device_access(buf, 0, UVM_PAGE)
        c16 = uvm.device_access(
            make_buf(uvm, addr=0x9100_0000, size=16 * UVM_PAGE), 0, 16 * UVM_PAGE
        )
        assert c16 == pytest.approx(16 * c1)

    def test_fault_accounting(self, uvm):
        buf = make_buf(uvm, size=4 * UVM_PAGE)
        uvm.device_access(buf, 0, buf.size)
        assert uvm.fault_count == 4
        assert uvm.migrated_bytes == 4 * UVM_PAGE

    def test_ever_used_set_on_register(self, uvm):
        assert not uvm.ever_used
        make_buf(uvm)
        assert uvm.ever_used


class TestWriteTracking:
    def test_concurrent_same_page_writes_detected(self, uvm):
        """The CRUM-breaking pattern: two streams, same page, overlapping
        in time."""
        buf = make_buf(uvm)
        s1, s2 = Stream(), Stream()
        uvm.record_device_write(buf, 0, UVM_PAGE, s1, 0, 100)
        uvm.record_device_write(buf, 0, UVM_PAGE, s2, 50, 150)
        assert len(uvm.concurrent_same_page_writes(buf)) == 1

    def test_disjoint_pages_not_flagged(self, uvm):
        buf = make_buf(uvm)
        s1, s2 = Stream(), Stream()
        uvm.record_device_write(buf, 0, UVM_PAGE, s1, 0, 100)
        uvm.record_device_write(buf, 2 * UVM_PAGE, UVM_PAGE, s2, 0, 100)
        assert uvm.concurrent_same_page_writes(buf) == []

    def test_disjoint_times_not_flagged(self, uvm):
        buf = make_buf(uvm)
        s1, s2 = Stream(), Stream()
        uvm.record_device_write(buf, 0, UVM_PAGE, s1, 0, 100)
        uvm.record_device_write(buf, 0, UVM_PAGE, s2, 100, 200)
        assert uvm.concurrent_same_page_writes(buf) == []

    def test_same_stream_not_flagged(self, uvm):
        buf = make_buf(uvm)
        s1 = Stream()
        uvm.record_device_write(buf, 0, UVM_PAGE, s1, 0, 100)
        uvm.record_device_write(buf, 0, UVM_PAGE, s1, 50, 150)
        assert uvm.concurrent_same_page_writes(buf) == []

    def test_compaction_stashes_unobserved_conflicts(self, uvm):
        """Opportunistic enqueue-time compaction must not hide a real
        conflict: a pair dropped from the log before any overlap query
        ran is stashed and still reported later."""
        buf = make_buf(uvm)
        s1, s2 = Stream(), Stream()
        uvm.record_device_write(buf, 0, UVM_PAGE, s1, 0, 100)
        uvm.record_device_write(buf, 0, UVM_PAGE, s2, 50, 150)
        # Flood the log past the threshold with conflict-free writes so
        # the conflicting pair is compacted away before any query.
        for i in range(uvm.COMPACT_THRESHOLD + 8):
            t = 1000.0 + i
            uvm.record_device_write(buf, 0, 1, s1, t, t + 0.5, now_ns=t)
        assert len(buf.device_writes) < uvm.COMPACT_THRESHOLD, (
            "opportunistic compaction never ran"
        )
        pairs = uvm.concurrent_same_page_writes(buf)
        assert len(pairs) == 1, "compaction lost an unobserved conflict"

    def test_compacting_query_drains_reported_conflicts(self, uvm):
        buf = make_buf(uvm)
        s1, s2 = Stream(), Stream()
        uvm.record_device_write(buf, 0, UVM_PAGE, s1, 0, 100)
        uvm.record_device_write(buf, 0, UVM_PAGE, s2, 50, 150)
        uvm.compact_writes(buf, before_ns=200.0)  # stashes the pair
        assert buf.device_writes == []
        pairs = uvm.concurrent_same_page_writes(buf, compact_before_ns=200.0)
        assert len(pairs) == 1
        # Reported and drained: a later query starts from a clean slate.
        assert uvm.concurrent_same_page_writes(buf) == []

    def test_noncompacting_query_never_observes_half_drained_stash(self, uvm):
        """Regression: a compacting query must drain *exactly* what it
        reported. A conflict stashed by its own bounded compaction but
        not present in the live sweep it reported must survive for the
        next (non-compacting) query — and a non-compacting query itself
        must leave the stash untouched."""
        buf = make_buf(uvm)
        s1, s2 = Stream(), Stream()
        # Pair A lives entirely before t=200; pair B straddles it.
        uvm.record_device_write(buf, 0, UVM_PAGE, s1, 0, 100)
        uvm.record_device_write(buf, 0, UVM_PAGE, s2, 50, 150)
        uvm.record_device_write(buf, 0, UVM_PAGE, s1, 180, 400)
        uvm.record_device_write(buf, 0, UVM_PAGE, s2, 190, 420)
        # Non-compacting query: reports both pairs, drains nothing.
        assert len(uvm.concurrent_same_page_writes(buf)) == 2
        assert buf.stashed_conflicts == []
        assert len(uvm.concurrent_same_page_writes(buf)) == 2
        # Compacting query at t=200: reports both live pairs, drops the
        # first pair's records, and must not leave those pairs stashed.
        pairs = uvm.concurrent_same_page_writes(buf, compact_before_ns=200.0)
        assert len(pairs) == 2
        # The straddling records survive in the live log; their pair was
        # reported (and drained), so it must not be double-reported...
        assert len(uvm.concurrent_same_page_writes(buf)) == 1
        # ...but the still-live pair is reported again until drained.
        pairs = uvm.concurrent_same_page_writes(buf, compact_before_ns=500.0)
        assert len(pairs) == 1
        assert uvm.concurrent_same_page_writes(buf) == []
        assert buf.stashed_conflicts == []


class TestAccounting:
    def test_total_managed_bytes(self, uvm):
        make_buf(uvm, size=3 * UVM_PAGE)
        make_buf(uvm, addr=0x9200_0000, size=5 * UVM_PAGE)
        assert uvm.total_managed_bytes() == 8 * UVM_PAGE

    def test_unregister(self, uvm):
        buf = make_buf(uvm)
        uvm.unregister(buf.addr)
        assert uvm.total_managed_bytes() == 0
