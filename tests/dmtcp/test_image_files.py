"""Tests for checkpoint-image serialization and integrity checking."""

import pickle

import pytest

from repro.dmtcp import CheckpointImage, DmtcpCheckpointer
from repro.linux import PAGE_SIZE, SimProcess


def make_image():
    proc = SimProcess(aslr=False, seed=51)
    a = proc.vas.mmap(4 * PAGE_SIZE, tag="upper:data")
    proc.vas.write(a, b"persist me")
    image = DmtcpCheckpointer(proc).checkpoint()
    return proc, a, image


class TestChecksum:
    def test_checksum_stable(self):
        _, _, image = make_image()
        assert image.content_checksum() == image.content_checksum()

    def test_checksum_changes_with_content(self):
        _, _, image = make_image()
        before = image.content_checksum()
        image.regions[0].pages[0] = b"\x00" * PAGE_SIZE
        assert image.content_checksum() != before

    def test_verify_requires_seal(self):
        _, _, image = make_image()
        assert not image.verify()
        image.seal()
        assert image.verify()


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        proc, a, image = make_image()
        path = tmp_path / "job.dmtcp"
        nbytes = image.save(path)
        assert nbytes > 0
        loaded = CheckpointImage.load(path)
        assert loaded.pid == image.pid
        assert loaded.regions[0].pages[0][:10] == b"persist me"

    def test_restore_from_loaded_image(self, tmp_path):
        proc, a, image = make_image()
        path = tmp_path / "job.dmtcp"
        image.save(path)
        loaded = CheckpointImage.load(path)
        fresh = SimProcess(aslr=False)
        DmtcpCheckpointer(proc).restore_memory(loaded, fresh)
        assert fresh.vas.read(a, 10) == b"persist me"

    def test_corrupt_file_rejected(self, tmp_path):
        _, _, image = make_image()
        path = tmp_path / "job.dmtcp"
        image.save(path)
        # Corrupt the payload in a way that survives unpickling: flip a
        # saved page in a re-pickled copy.
        loaded = pickle.loads(path.read_bytes())
        loaded.regions[0].pages[0] = b"\xff" * PAGE_SIZE
        path.write_bytes(pickle.dumps(loaded))
        with pytest.raises(ValueError, match="checksum"):
            CheckpointImage.load(path)

    def test_non_image_file_rejected(self, tmp_path):
        path = tmp_path / "junk.dmtcp"
        path.write_bytes(pickle.dumps({"not": "an image"}))
        with pytest.raises(ValueError):
            CheckpointImage.load(path)

    def test_crac_session_image_roundtrips(self, tmp_path):
        from repro.core import CracSession
        from repro.cuda.api import FatBinary

        session = CracSession(seed=53)
        session.backend.register_app_binary(FatBinary("f.fatbin", ("k",)))
        p = session.backend.malloc(128)
        image = session.checkpoint()
        path = tmp_path / "crac.dmtcp"
        image.save(path)
        loaded = CheckpointImage.load(path)
        session.kill()
        session.restart(loaded)
        assert p in session.runtime.buffers
