"""Regression tests: unaligned plugin skip ranges must not drop pages.

``shift = (lo - region.start) // PAGE_SIZE`` silently truncated when a
plugin returned a skip range that was not page-aligned, dropping or
misattributing the boundary pages. Skips are now expanded outward to
page boundaries before subtraction (skip granularity is the page).
"""

import pytest

from repro.dmtcp import DmtcpCheckpointer, DmtcpPlugin
from repro.linux import PAGE_SIZE, SimProcess


@pytest.fixture
def proc():
    return SimProcess(aslr=False, seed=13)


def _veto(ranges):
    class Veto(DmtcpPlugin):
        def skip_ranges(self):
            return list(ranges)

    return Veto()


class TestUnalignedSkips:
    def test_unaligned_skip_keeps_boundary_page_content(self, proc):
        """A skip starting mid-page: surviving parts stay page-aligned
        and every non-vetoed page's content restores byte-exact."""
        base = proc.vas.mmap(6 * PAGE_SIZE, tag="upper:mixed")
        for pg in range(6):
            proc.vas.write(base + pg * PAGE_SIZE, f"page-{pg}".encode())
        # Veto [page2+100, page3+200): expands outward to pages 2–3.
        ckpt = DmtcpCheckpointer(
            proc, [_veto([(base + 2 * PAGE_SIZE + 100, PAGE_SIZE + 100)])]
        )
        image = ckpt.checkpoint()
        regions = [r for r in image.regions if base <= r.start < base + 6 * PAGE_SIZE]
        for r in regions:
            assert r.start % PAGE_SIZE == 0, "saved region must be page-aligned"
            assert r.size % PAGE_SIZE == 0
        saved_pages = {
            (r.start - base) // PAGE_SIZE + pg
            for r in regions
            for pg in r.pages
        }
        # Pages 2 and 3 are (conservatively) vetoed; 0,1,4,5 must survive.
        assert saved_pages == {0, 1, 4, 5}

        fresh = SimProcess(aslr=False)
        ckpt.restore_memory(image, fresh)
        for pg in (0, 1, 4, 5):
            want = f"page-{pg}".encode()
            assert fresh.vas.read(base + pg * PAGE_SIZE, len(want)) == want

    def test_unaligned_skip_drops_no_unrelated_page(self, proc):
        """The truncated-shift bug misattributed pages *after* the hole:
        page keys must stay consistent with the region's new start."""
        base = proc.vas.mmap(4 * PAGE_SIZE, tag="upper:data")
        proc.vas.write(base + 3 * PAGE_SIZE, b"tail")
        ckpt = DmtcpCheckpointer(proc, [_veto([(base + PAGE_SIZE + 7, 17)])])
        image = ckpt.checkpoint()
        tail_region = next(
            r for r in image.regions if r.start == base + 2 * PAGE_SIZE
        )
        assert tail_region.pages[1][:4] == b"tail"

    def test_incremental_with_unaligned_skip(self, proc):
        base = proc.vas.mmap(4 * PAGE_SIZE, tag="upper:data")
        ckpt = DmtcpCheckpointer(proc, [_veto([(base + PAGE_SIZE + 1, 10)])])
        parent = ckpt.checkpoint()
        proc.vas.write(base + 2 * PAGE_SIZE, b"dirty")
        inc = ckpt.checkpoint(incremental=True, parent=parent)
        saved = {
            r.start + pg * PAGE_SIZE
            for r in inc.regions
            for pg in r.pages
        }
        assert saved == {base + 2 * PAGE_SIZE}
