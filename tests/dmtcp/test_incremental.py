"""Tests for incremental (dirty-page) checkpointing."""

import pytest

from repro.dmtcp import DmtcpCheckpointer
from repro.linux import PAGE_SIZE, SimProcess


@pytest.fixture
def proc():
    return SimProcess(aslr=False, seed=31)


class TestDirtyTracking:
    def test_writes_mark_pages_dirty(self, proc):
        a = proc.vas.mmap(4 * PAGE_SIZE)
        region = proc.vas.find(a)
        proc.vas.write(a + PAGE_SIZE + 10, b"x")
        assert region.dirty == {1}

    def test_clear_dirty(self, proc):
        a = proc.vas.mmap(PAGE_SIZE)
        proc.vas.write(a, b"x")
        region = proc.vas.find(a)
        region.clear_dirty()
        assert region.dirty == set()
        assert region.read(a, 1) == b"x"  # content untouched

    def test_split_preserves_dirty(self, proc):
        a = proc.vas.mmap(4 * PAGE_SIZE)
        proc.vas.write(a, b"x")
        proc.vas.write(a + 3 * PAGE_SIZE, b"y")
        proc.vas.mprotect(a, 2 * PAGE_SIZE, "r--")  # forces a split
        left = proc.vas.find(a)
        right = proc.vas.find(a + 2 * PAGE_SIZE)
        assert 0 in left.dirty
        assert 1 in right.dirty  # page 3 → index 1 of the right half


class TestIncrementalCheckpoint:
    def test_requires_parent(self, proc):
        c = DmtcpCheckpointer(proc)
        with pytest.raises(ValueError):
            c.checkpoint(incremental=True)

    def test_incremental_image_much_smaller(self, proc):
        a = proc.vas.mmap(256 * PAGE_SIZE)  # 1 MB region
        proc.vas.write(a, b"z" * (64 * PAGE_SIZE))
        c = DmtcpCheckpointer(proc)
        base = c.checkpoint()
        proc.vas.write(a + 5 * PAGE_SIZE, b"delta")  # touch one page
        inc = c.checkpoint(incremental=True, parent=base)
        assert inc.size_bytes <= 2 * PAGE_SIZE
        assert inc.size_bytes < base.size_bytes / 100

    def test_incremental_checkpoint_faster(self, proc):
        proc.vas.mmap(1 << 28)  # 256 MB virtual
        c = DmtcpCheckpointer(proc)
        t0 = proc.clock_ns
        base = c.checkpoint()
        full_time = proc.clock_ns - t0
        t0 = proc.clock_ns
        c.checkpoint(incremental=True, parent=base)
        inc_time = proc.clock_ns - t0
        assert inc_time < full_time / 2

    def test_chain_links(self, proc):
        c = DmtcpCheckpointer(proc)
        base = c.checkpoint()
        i1 = c.checkpoint(incremental=True, parent=base)
        i2 = c.checkpoint(incremental=True, parent=i1)
        assert i2.chain() == [base, i1, i2]


class TestIncrementalRestore:
    def test_chain_restore_reconstructs_latest_state(self, proc):
        a = proc.vas.mmap(8 * PAGE_SIZE, tag="upper:data")
        proc.vas.write(a, b"v1-page0")
        proc.vas.write(a + PAGE_SIZE, b"v1-page1")
        c = DmtcpCheckpointer(proc)
        base = c.checkpoint()

        proc.vas.write(a, b"v2-page0")  # dirty page 0 only
        i1 = c.checkpoint(incremental=True, parent=base)

        proc.vas.write(a + 2 * PAGE_SIZE, b"v3-page2")
        i2 = c.checkpoint(incremental=True, parent=i1)

        fresh = SimProcess(aslr=False, seed=99)
        c.restore_memory(i2, fresh)
        assert fresh.vas.read(a, 8) == b"v2-page0"
        assert fresh.vas.read(a + PAGE_SIZE, 8) == b"v1-page1"
        assert fresh.vas.read(a + 2 * PAGE_SIZE, 8) == b"v3-page2"

    def test_restore_base_only_gives_old_state(self, proc):
        a = proc.vas.mmap(PAGE_SIZE)
        proc.vas.write(a, b"old")
        c = DmtcpCheckpointer(proc)
        base = c.checkpoint()
        proc.vas.write(a, b"new")
        c.checkpoint(incremental=True, parent=base)
        fresh = SimProcess(aslr=False)
        c.restore_memory(base, fresh)
        assert fresh.vas.read(a, 3) == b"old"

    def test_regions_created_after_base_restored_from_increment(self, proc):
        c = DmtcpCheckpointer(proc)
        base = c.checkpoint()
        b = proc.vas.mmap(PAGE_SIZE, tag="upper:late")
        proc.vas.write(b, b"late region")
        inc = c.checkpoint(incremental=True, parent=base)
        fresh = SimProcess(aslr=False)
        c.restore_memory(inc, fresh)
        assert fresh.vas.read(b, 11) == b"late region"


class TestCracIncremental:
    def test_crac_session_incremental_restart(self):
        """Full CRAC cycle on an incremental chain."""
        import numpy as np

        from repro.core import CracSession
        from repro.cuda.api import FatBinary

        session = CracSession(seed=37)
        backend = session.backend
        backend.register_app_binary(FatBinary("inc.fatbin", ("k",)))
        upper = session.split.upper_mmap(64 * PAGE_SIZE)
        session.process.vas.write(upper, b"gen0")
        base = session.checkpoint()
        session.process.vas.write(upper, b"gen1")
        p = backend.malloc(256)
        backend.device_view(p, 4)[:] = np.frombuffer(b"gpu!", np.uint8)
        inc = session.checkpoint(incremental=True, parent=base)
        assert inc.size_bytes < base.size_bytes / 5

        session.kill()
        session.restart(inc)
        assert session.process.vas.read(upper, 4) == b"gen1"
        assert session.backend.device_view(p, 4).tobytes() == b"gpu!"
