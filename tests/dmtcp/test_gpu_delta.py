"""GPU delta chains: restoring base+deltas must equal a full restore.

The plugin stages only dirtied device/UVM spans into incremental
images; restart walks the image chain and stacks the deltas onto the
replay-created buffer. These tests pin the equivalence against a full
checkpoint taken at the same instant, and the uid guard that stops a
recycled arena address from inheriting a dead buffer's bytes.
"""

import numpy as np
import pytest

from repro.core import CracSession
from repro.cuda.api import FatBinary
from repro.dmtcp.store import CheckpointStore


@pytest.fixture
def session():
    s = CracSession(seed=31)
    s.backend.register_app_binary(FatBinary("delta.fatbin", ("k",)))
    return s


class TestChainEquivalence:
    def test_chain_restore_matches_full_restore(self, session):
        chain_store = CheckpointStore()
        full_store = CheckpointStore()

        dev = session.backend.malloc(64 * 1024)
        mgd = session.backend.malloc_managed(32 * 1024)
        session.backend.device_view(dev, 64 * 1024)[:] = 1
        session.backend.managed_view(mgd, 32 * 1024)[:] = 2

        base = session.checkpoint(store=chain_store)

        session.backend.device_view(dev, 4096, offset=8192)[:] = 3
        inc1 = session.checkpoint(
            incremental=True, parent=base, store=chain_store
        )

        session.backend.device_view(dev, 100, offset=60000)[:] = 4
        session.backend.managed_view(mgd, 256, offset=1024)[:] = 5
        inc2 = session.checkpoint(
            incremental=True, parent=inc1, store=chain_store
        )
        # Same instant, no further mutation: a full image for reference.
        session.checkpoint(store=full_store)

        want_dev = session.backend.device_view(dev, 64 * 1024).tobytes()
        want_mgd = session.backend.managed_view(mgd, 32 * 1024).tobytes()

        # The incremental entries really are deltas, not full snapshots.
        entry = inc2.blob("crac/buffers")[dev]
        assert entry["delta"] and not entry["snapshot"]["whole"]
        assert entry["image_bytes"] < 64 * 1024

        session.kill()
        session.restart_latest(chain_store)
        assert session.backend.device_view(dev, 64 * 1024).tobytes() == want_dev
        assert session.backend.managed_view(mgd, 32 * 1024).tobytes() == want_mgd

        session.kill()
        session.restart_latest(full_store)
        assert session.backend.device_view(dev, 64 * 1024).tobytes() == want_dev
        assert session.backend.managed_view(mgd, 32 * 1024).tobytes() == want_mgd

    def test_untouched_buffer_restores_from_base_of_chain(self, session):
        store = CheckpointStore()
        dev = session.backend.malloc(4096)
        session.backend.device_view(dev, 4096)[:] = 9
        base = session.checkpoint(store=store)
        # Three cuts that never touch `dev` again.
        prev = base
        for _ in range(3):
            prev = session.checkpoint(
                incremental=True, parent=prev, store=store
            )
        session.kill()
        session.restart_latest(store)
        assert session.backend.device_view(dev, 4096).tobytes() == b"\x09" * 4096


class TestUidGuard:
    def test_recycled_address_does_not_inherit_stale_bytes(self, session):
        """free(A) then malloc(B) reuses A's arena address. B's delta
        must stack onto B's fresh zero-filled replay buffer, never onto
        A's bytes from the base image."""
        store = CheckpointStore()
        a = session.backend.malloc(8192)
        session.backend.device_view(a, 8192)[:] = 0xAA
        base = session.checkpoint(store=store)

        session.backend.free(a)
        b = session.backend.malloc(8192)
        assert b == a, "arena should recycle the freed address"
        # Touch only the first 256 bytes of B.
        session.backend.device_view(b, 256)[:] = 0xBB
        inc = session.checkpoint(incremental=True, parent=base, store=store)

        uid_a = base.blob("crac/buffers")[a]["uid"]
        uid_b = inc.blob("crac/buffers")[b]["uid"]
        assert uid_a != uid_b

        session.kill()
        session.restart_latest(store)
        got = session.backend.device_view(b, 8192).tobytes()
        assert got[:256] == b"\xbb" * 256
        assert got[256:] == b"\x00" * (8192 - 256), (
            "recycled address leaked the dead buffer's bytes through "
            "the delta chain"
        )
