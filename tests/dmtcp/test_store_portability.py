"""Portable generation records: export/import across stores, integrity."""

import numpy as np
import pytest

from repro.core.session import CracSession
from repro.cuda.api import FatBinary
from repro.dmtcp.image import CheckpointImage
from repro.dmtcp.store import CheckpointStore
from repro.errors import CheckpointStoreError, CorruptCheckpointError

FB = FatBinary("portable.fatbin", ("mutate",))
N = 64
NBYTES = 4 * N


def make_session(seed=7):
    session = CracSession(seed=seed)
    session.backend.register_app_binary(FB)
    ptr = session.backend.malloc(NBYTES)
    session.backend.memcpy(ptr, np.arange(N, dtype=np.float32), NBYTES, "h2d")
    return session, ptr


def bump(session, ptr):
    def fn():
        view = session.backend.device_view(ptr, NBYTES, np.float32)
        np.add(view, 1.0, out=view)

    session.backend.launch("mutate", fn, duration_ns=50_000.0)
    session.backend.device_synchronize()


def chain_in_store(store, session, ptr):
    """Commit a full + incremental pair; returns the images."""
    bump(session, ptr)
    full = session.checkpoint(store=store)
    bump(session, ptr)
    inc = session.checkpoint(store=store, incremental=True, parent=full)
    return full, inc


class TestCrossStoreRoundTrip:
    def test_imported_chain_verifies_and_restores_bit_exact(self):
        a, b = CheckpointStore(), CheckpointStore()
        session, ptr = make_session()
        chain_in_store(a, session, ptr)
        records = a.export_chain(a.latest())
        assert len(records) == 2
        gens = b.import_chain(records)
        for gen in gens:
            b.verify(gen)
        session.kill()
        session.restart_latest(b)
        out = np.empty(N, dtype=np.float32)
        session.backend.memcpy(out, ptr, NBYTES, "d2h")
        assert np.array_equal(out, np.arange(N, dtype=np.float32) + 2.0)
        session.kill()

    def test_export_is_verified_on_the_source_first(self):
        a = CheckpointStore()
        session, ptr = make_session()
        bump(session, ptr)
        session.checkpoint(store=a)
        record = a.export_generation(a.latest())
        assert record["payload_crc"] > 0
        assert record["size_bytes"] > 0
        assert record["parent_generation"] is None
        session.kill()


class TestArrivalIntegrity:
    def _record(self):
        a = CheckpointStore()
        session, ptr = make_session()
        bump(session, ptr)
        session.checkpoint(store=a)
        record = a.export_generation(a.latest())
        session.kill()
        return record

    def test_wire_corruption_is_rejected_by_the_payload_crc(self):
        record = self._record()
        payload = bytearray(record["payload"])
        payload[len(payload) // 2] ^= 0xFF
        bad = {**record, "payload": bytes(payload)}
        b = CheckpointStore()
        with pytest.raises(CorruptCheckpointError):
            b.import_generation(bad)
        assert b.generations == []

    def test_region_checksum_tamper_is_rejected(self):
        record = self._record()
        tampered = dict(record["checksums"])
        first = sorted(tampered)[0]
        tampered[first] ^= 0xDEAD
        bad = {**record, "checksums": tampered}
        b = CheckpointStore()
        with pytest.raises(CorruptCheckpointError):
            b.import_generation(bad)

    def test_incremental_record_requires_its_parent(self):
        a, b = CheckpointStore(), CheckpointStore()
        session, ptr = make_session()
        chain_in_store(a, session, ptr)
        inc_record = a.export_generation(a.latest())
        assert inc_record["incremental"]
        with pytest.raises(CheckpointStoreError):
            b.import_generation(inc_record)
        session.kill()


class TestPortability:
    def test_payload_carries_no_parent_or_runtime_state(self):
        a = CheckpointStore()
        session, ptr = make_session()
        # Enough upper-half ballast that a full image dwarfs a delta.
        session.split.upper_mmap(256 << 10)
        full, _ = chain_in_store(a, session, ptr)
        records = a.export_chain(a.latest())
        full_rec, inc_rec = records
        # The incremental record ships without its ancestor's data: its
        # wire size is the delta, not the base, and the chain is
        # re-linked at import time by parent_generation ids.
        assert inc_rec["size_bytes"] < full_rec["size_bytes"]
        orphan = CheckpointImage.from_payload(inc_rec["payload"])
        assert orphan.parent is None
        assert orphan.incremental
        orphan_full = CheckpointImage.from_payload(full_rec["payload"])
        assert orphan_full.parent is None
        assert not orphan_full.incremental
        session.kill()


class TestPins:
    def test_pinned_generation_survives_keep_n_pressure(self):
        a = CheckpointStore(keep_generations=1)
        session, ptr = make_session()
        bump(session, ptr)
        session.checkpoint(store=a)
        first = a.latest()
        a.pin(first)
        for _ in range(3):
            bump(session, ptr)
            session.checkpoint(store=a)
        assert first in a.generations
        assert a.pinned() == [first]
        a.unpin(first)
        a.gc()
        assert first not in a.generations
        assert a.pinned() == []
        session.kill()
