"""Tests for the DMTCP substrate: images, plugins, save/restore."""

import pytest

from repro.dmtcp import (
    CheckpointImage,
    DmtcpCheckpointer,
    DmtcpCoordinator,
    DmtcpPlugin,
)
from repro.dmtcp.checkpointer import _subtract_ranges
from repro.linux import PAGE_SIZE, SimProcess


@pytest.fixture
def proc():
    p = SimProcess(aslr=False, seed=5)
    return p


class TestSubtractRanges:
    def test_no_skips(self):
        assert _subtract_ranges((0, 100), []) == [(0, 100)]

    def test_full_cover(self):
        assert _subtract_ranges((10, 20), [(0, 100)]) == []

    def test_middle_hole(self):
        assert _subtract_ranges((0, 100), [(40, 20)]) == [(0, 40), (60, 100)]

    def test_multiple_skips(self):
        out = _subtract_ranges((0, 100), [(10, 10), (50, 10)])
        assert out == [(0, 10), (20, 50), (60, 100)]

    def test_skip_outside_span(self):
        assert _subtract_ranges((0, 100), [(200, 50)]) == [(0, 100)]


class TestCheckpoint:
    def test_saves_all_regions_without_plugins(self, proc):
        a = proc.vas.mmap(2 * PAGE_SIZE, tag="upper:data")
        proc.vas.write(a, b"hello")
        image = DmtcpCheckpointer(proc).checkpoint()
        assert image.region_bytes == 2 * PAGE_SIZE
        assert image.regions[0].pages[0][:5] == b"hello"

    def test_skip_ranges_exclude_memory(self, proc):
        keep = proc.vas.mmap(PAGE_SIZE, tag="upper:keep")
        skip = proc.vas.mmap(PAGE_SIZE, tag="lower:skip")

        class Veto(DmtcpPlugin):
            def skip_ranges(self):
                return [(skip, PAGE_SIZE)]

        image = DmtcpCheckpointer(proc, [Veto()]).checkpoint()
        starts = [r.start for r in image.regions]
        assert keep in starts
        assert skip not in starts

    def test_partial_skip_splits_region(self, proc):
        base = proc.vas.mmap(4 * PAGE_SIZE, tag="upper:mixed")
        proc.vas.write(base + 3 * PAGE_SIZE, b"tail")

        class Veto(DmtcpPlugin):
            def skip_ranges(self):
                return [(base + PAGE_SIZE, PAGE_SIZE)]

        image = DmtcpCheckpointer(proc, [Veto()]).checkpoint()
        sizes = sorted(r.size for r in image.regions)
        assert sizes == [PAGE_SIZE, 2 * PAGE_SIZE]
        # The page content shifted to keys relative to the new start.
        tail_region = next(r for r in image.regions if r.size == 2 * PAGE_SIZE)
        assert tail_region.pages[1][:4] == b"tail"

    def test_checkpoint_advances_clock_proportional_to_size(self, proc):
        proc.vas.mmap(PAGE_SIZE, tag="small")
        t0 = proc.clock_ns
        DmtcpCheckpointer(proc).checkpoint()
        t_small = proc.clock_ns - t0
        proc.vas.mmap(1 << 30, tag="big")  # 1 GB virtual
        t0 = proc.clock_ns
        DmtcpCheckpointer(proc).checkpoint()
        t_big = proc.clock_ns - t0
        assert t_big > t_small + 0.3e9  # ≥ 1GB / 2.6GB/s ≈ 0.38 s extra

    def test_gzip_costs_more_time(self, proc):
        proc.vas.mmap(256 << 20, tag="data")
        c = DmtcpCheckpointer(proc)
        t0 = proc.clock_ns
        c.checkpoint(gzip=False)
        plain = proc.clock_ns - t0
        t0 = proc.clock_ns
        c.checkpoint(gzip=True)
        zipped = proc.clock_ns - t0
        assert zipped > plain * 2

    def test_plugin_hooks_fire_in_order(self, proc):
        events = []

        class P(DmtcpPlugin):
            def on_precheckpoint(self, image):
                events.append("pre")

            def on_resume(self, image):
                events.append("resume")

        DmtcpCheckpointer(proc, [P()]).checkpoint()
        assert events == ["pre", "resume"]

    def test_blobs_count_toward_image_size(self, proc):
        class P(DmtcpPlugin):
            def on_precheckpoint(self, image):
                image.add_blob("gpu-buffers", {"x": 1}, accounted_bytes=1 << 20)

        image = DmtcpCheckpointer(proc, [P()]).checkpoint()
        assert image.blob_bytes == 1 << 20
        assert image.size_bytes >= 1 << 20

    def test_duplicate_blob_rejected(self):
        image = CheckpointImage(pid=1, created_at_ns=0)
        image.add_blob("a", 1)
        with pytest.raises(ValueError):
            image.add_blob("a", 2)


class TestRestore:
    def test_restore_recreates_regions_and_content(self, proc):
        a = proc.vas.mmap(2 * PAGE_SIZE, tag="upper:data", perms="rw-")
        proc.vas.write(a + 100, b"persisted")
        image = DmtcpCheckpointer(proc).checkpoint()

        fresh = SimProcess(aslr=False, seed=99)
        DmtcpCheckpointer(proc).restore_memory(image, fresh)
        assert fresh.vas.read(a + 100, 9) == b"persisted"
        assert fresh.vas.find(a).perms == "rw-"

    def test_restore_cost_scales_with_size(self, proc):
        proc.vas.mmap(1 << 30, tag="big")
        image = DmtcpCheckpointer(proc).checkpoint()
        fresh = SimProcess(aslr=False)
        cost = DmtcpCheckpointer(proc).restore_memory(image, fresh)
        assert cost > 0.3e9  # ≥ 1GB / 2.9GB/s


class TestCoordinator:
    def test_notify_call_triggers_at_scheduled_index(self, proc):
        proc.vas.mmap(PAGE_SIZE, tag="d")
        coord = DmtcpCoordinator(DmtcpCheckpointer(proc))
        coord.schedule_checkpoint_at_call(3)
        assert coord.notify_call() is None
        assert coord.notify_call() is None
        image = coord.notify_call()
        assert image is not None
        assert coord.notify_call() is None  # disarmed

    def test_random_schedule_is_reproducible(self, proc):
        c1 = DmtcpCoordinator(DmtcpCheckpointer(proc), seed=42)
        c2 = DmtcpCoordinator(DmtcpCheckpointer(proc), seed=42)
        assert c1.schedule_random_checkpoint(1000) == c2.schedule_random_checkpoint(1000)

    def test_images_recorded(self, proc):
        coord = DmtcpCoordinator(DmtcpCheckpointer(proc))
        coord.checkpoint()
        coord.checkpoint()
        assert len(coord.images) == 2
