"""Forked (copy-on-write) checkpoint semantics.

The app resumes right after quiesce + snapshot; the image write runs on
a background timeline. Commit — and the image-write fault stage — move
to write completion, preserving the 2PC/abort crash-consistency rules.
"""

import numpy as np
import pytest

from repro.core import CracSession
from repro.cuda.api import FatBinary
from repro.dmtcp.store import CheckpointStore
from repro.errors import InjectedFault
from repro.harness.fault_injection import FaultInjector, FaultSpec
from repro.linux import PAGE_SIZE


def make_session(**kw):
    session = CracSession(seed=23, **kw)
    session.backend.register_app_binary(FatBinary("fk.fatbin", ("k",)))
    return session


BIG = 512 << 20  # large enough that the write time dominates the stall


class TestForkedStall:
    def test_forked_checkpoint_stalls_less_than_synchronous(self):
        s_sync = make_session()
        s_sync.split.upper_mmap(BIG)
        t0 = s_sync.process.clock_ns
        s_sync.checkpoint()
        sync_stall = s_sync.process.clock_ns - t0

        s_fork = make_session()
        s_fork.split.upper_mmap(BIG)
        t0 = s_fork.process.clock_ns
        image = s_fork.checkpoint(forked=True)
        fork_stall = s_fork.process.clock_ns - t0

        assert fork_stall < sync_stall / 2
        assert image.checkpoint_time_ns == pytest.approx(fork_stall)
        writer = s_fork.pending_forks[0]
        assert writer.in_flight(s_fork.process.clock_ns)
        assert writer.write_end_ns > s_fork.process.clock_ns

    def test_finish_blocks_until_write_end_when_idle(self):
        session = make_session()
        session.split.upper_mmap(BIG)
        session.checkpoint(forked=True)
        writer = session.pending_forks[0]
        session.finish_forked_checkpoints()
        assert session.process.clock_ns == pytest.approx(writer.write_end_ns)
        assert writer.residual_wait_ns > 0
        assert writer.committed

    def test_app_work_overlaps_the_write(self):
        """If the app computes past write_end on its own, finish() adds
        no residual wait — the write was hidden entirely."""
        session = make_session()
        session.split.upper_mmap(BIG)
        session.checkpoint(forked=True)
        writer = session.pending_forks[0]
        session.process.advance_to(writer.write_end_ns + 1.0)
        session.finish_forked_checkpoints()
        assert writer.residual_wait_ns == 0.0
        assert writer.committed


class TestForkedCommitPoint:
    def test_commit_deferred_to_finish(self):
        session = make_session()
        upper = session.split.upper_mmap(4 * PAGE_SIZE)
        session.process.vas.write(upper, b"dirty")
        image = session.checkpoint(forked=True)
        assert not image.committed
        # Dirty bits must survive until the background write commits.
        assert 0 in session.process.vas.find(upper).dirty
        session.finish_forked_checkpoints()
        assert image.committed
        assert 0 not in session.process.vas.find(upper).dirty

    def test_cow_window_writes_stay_dirty_and_charge_cow(self):
        session = make_session()
        upper = session.split.upper_mmap(BIG)
        session.process.vas.write(upper, b"base")
        session.checkpoint(forked=True)
        writer = session.pending_forks[0]
        # Dirty a chunk inside the write window.
        session.process.vas.write(upper + PAGE_SIZE, b"z" * (128 * PAGE_SIZE))
        session.finish_forked_checkpoints()
        assert writer.cow_bytes > 0
        assert writer.cow_time_ns > 0
        # COW-copied pages were NOT captured by the image: still dirty.
        assert 1 in session.process.vas.find(upper).dirty

    def test_fault_at_write_completion_aborts_commit(self):
        fi = FaultInjector()
        session = make_session(fault_injector=fi)
        upper = session.split.upper_mmap(4 * PAGE_SIZE)
        session.process.vas.write(upper, b"dirty")
        image = session.checkpoint(forked=True)
        fi.arm(FaultSpec("image-write", at_count=fi.visits["image-write"] + 1))
        with pytest.raises(InjectedFault):
            session.finish_forked_checkpoints()
        assert not image.committed
        assert session.pending_forks == []
        assert 0 in session.process.vas.find(upper).dirty, (
            "crashed forked write lost dirty bits"
        )

    def test_next_checkpoint_drains_previous_fork(self):
        session = make_session()
        session.split.upper_mmap(BIG)
        first = session.checkpoint(forked=True)
        second = session.checkpoint()
        assert first.committed
        assert second.committed
        assert session.pending_forks == []


class TestCowWindowRewrite:
    """A page/span the image *captured* that is re-written inside the
    forked write window. The image holds the pre-window bytes, so the
    commit must not clear the re-write's dirty bit (epoch-bounded
    clearing) — otherwise the next incremental cut silently restores
    stale data."""

    def test_rewritten_captured_page_stays_dirty_and_restores(self):
        session = make_session()
        upper = session.split.upper_mmap(4 * PAGE_SIZE)
        base = session.checkpoint()

        session.process.vas.write(upper, b"v1")
        image = session.checkpoint(forked=True, incremental=True, parent=base)
        writer = session.pending_forks[0]
        # Re-write the SAME page the image just captured, in the window.
        session.process.vas.write(upper, b"v2")
        session.finish_forked_checkpoints()

        assert image.committed
        assert writer.cow_bytes >= PAGE_SIZE, (
            "re-write of a captured page must charge COW"
        )
        assert 0 in session.process.vas.find(upper).dirty, (
            "commit cleared a page re-written after the snapshot"
        )
        # The forked image itself holds the pre-window bytes.
        assert any(
            r.start == upper and r.pages.get(0, b"").startswith(b"v1")
            for r in image.regions
        )

        inc2 = session.checkpoint(incremental=True, parent=image)
        from repro.linux import SimProcess

        fresh = SimProcess(aslr=False)
        session.checkpointer.restore_memory(inc2, fresh)
        assert fresh.vas.read(upper, 2) == b"v2", (
            "next incremental cut restored the stale pre-window bytes"
        )

    def test_rewritten_captured_gpu_span_stays_dirty_and_restores(self):
        session = make_session()
        store = CheckpointStore()
        p = session.backend.malloc(4096)
        session.backend.device_view(p, 16)[:] = 1
        base = session.checkpoint(store=store)

        session.backend.device_view(p, 16)[:] = 2
        image = session.checkpoint(
            forked=True, incremental=True, parent=base, store=store
        )
        # Re-write the captured span inside the write window.
        session.backend.device_view(p, 16)[:] = 3
        session.finish_forked_checkpoints()

        buf = session.runtime.buffers[p]
        assert buf.contents.dirty_byte_count >= 16, (
            "commit cleared a GPU span re-written after the snapshot"
        )
        session.checkpoint(incremental=True, parent=image, store=store)
        session.kill()
        session.restart_latest(store)
        assert session.backend.device_view(p, 16).tobytes() == b"\x03" * 16, (
            "delta chain restored the stale pre-window GPU bytes"
        )


class TestForkedAbort:
    """abort(): release a background write without committing — the
    fault-domain ladder tears in-flight writers down before recovery
    rolls the session back to an older generation."""

    def test_abort_releases_without_commit_and_keeps_dirty(self):
        session = make_session()
        upper = session.split.upper_mmap(4 * PAGE_SIZE)
        session.process.vas.write(upper, b"dirty")
        p = session.backend.malloc(4096)
        session.backend.device_view(p, 16)[:] = 5
        image = session.checkpoint(forked=True)
        writer = session.pending_forks[0]
        session.abort_pending_writers()
        assert writer.aborted
        assert not image.committed
        assert session.pending_forks == []
        assert 0 in session.process.vas.find(upper).dirty
        buf = session.runtime.buffers[p]
        assert buf.contents.dirty_byte_count > 0
        # A stray commit on the released image must clear nothing.
        image.mark_committed()
        assert 0 in session.process.vas.find(upper).dirty
        assert buf.contents.dirty_byte_count > 0

    def test_abort_is_idempotent_and_noop_after_finish(self):
        session = make_session()
        session.split.upper_mmap(4 * PAGE_SIZE)
        image = session.checkpoint(forked=True)
        writer = session.pending_forks[0]
        writer.abort()
        writer.abort()  # second abort: no-op
        assert writer.aborted
        # And once finished, abort must not un-commit.
        session2 = make_session()
        session2.split.upper_mmap(4 * PAGE_SIZE)
        image2 = session2.checkpoint(forked=True)
        session2.finish_forked_checkpoints()
        writer2 = image2.forked_writer
        writer2.abort()
        assert image2.committed
        assert not writer2.aborted

    def test_fault_at_write_completion_then_abort_is_clean(self):
        """A write that crashed at completion is released by abort()
        without re-raising — the ladder can always tear down."""
        fi = FaultInjector()
        session = make_session(fault_injector=fi)
        upper = session.split.upper_mmap(4 * PAGE_SIZE)
        session.process.vas.write(upper, b"dirty")
        image = session.checkpoint(forked=True)
        writer = session.pending_forks[0]
        fi.arm(FaultSpec("image-write", at_count=fi.visits["image-write"] + 1))
        with pytest.raises(InjectedFault):
            session.finish_forked_checkpoints()
        writer.abort()  # post-crash teardown: idempotent, no raise
        assert not image.committed
        assert 0 in session.process.vas.find(upper).dirty

    def test_finish_after_abort_is_noop(self):
        session = make_session()
        session.split.upper_mmap(4 * PAGE_SIZE)
        image = session.checkpoint(forked=True)
        writer = session.pending_forks.pop(0)
        writer.abort()
        writer.finish(session.process)  # must not resurrect the write
        assert not image.committed
        assert writer.aborted


class TestForkedWithStore:
    def test_generation_appears_at_finish_not_fork(self):
        session = make_session()
        session.split.upper_mmap(BIG)
        store = CheckpointStore()
        session.checkpoint(store=store, forked=True)
        assert store.generations == []
        session.finish_forked_checkpoints()
        assert len(store.generations) == 1

    def test_store_write_crash_leaves_partial_and_dirty(self):
        fi = FaultInjector()
        session = make_session(fault_injector=fi)
        upper = session.split.upper_mmap(4 * PAGE_SIZE)
        session.process.vas.write(upper, b"dirty")
        store = CheckpointStore(fault_injector=fi)
        image = session.checkpoint(store=store, forked=True)
        fi.arm(FaultSpec("image-write", at_count=fi.visits["image-write"] + 1))
        with pytest.raises(InjectedFault):
            session.finish_forked_checkpoints()
        assert store.generations == []
        assert store.discard_partials() == 1
        assert not image.committed
        assert 0 in session.process.vas.find(upper).dirty

    def test_kill_with_inflight_fork_still_commits(self):
        """The forked child outlives the parent (CRUM's model): the
        generation is restorable even though the app died mid-write."""
        session = make_session()
        upper = session.split.upper_mmap(BIG)
        session.process.vas.write(upper, b"survives")
        p = session.backend.malloc(4096)
        session.backend.device_view(p, 8)[:] = np.arange(8, dtype=np.uint8)
        store = CheckpointStore()
        session.checkpoint(store=store, forked=True)
        writer = session.pending_forks[0]
        assert writer.in_flight(session.process.clock_ns)
        death_clock = session.process.clock_ns
        session.kill()
        # The parent never waited out the write window...
        assert death_clock <= writer.write_end_ns
        # ...but the child committed the generation.
        assert len(store.generations) == 1
        report = session.restart_latest(store)
        assert report.generation == 1
        assert session.process.vas.read(upper, 8) == b"survives"
        assert session.backend.device_view(p, 8).tobytes() == bytes(range(8))
