"""Property-based tests for checkpoint/restore invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dmtcp import DmtcpCheckpointer, DmtcpPlugin
from repro.dmtcp.checkpointer import _subtract_ranges
from repro.linux import PAGE_SIZE, SimProcess

BASE = 0x4000_0000

# Random process-memory builder: (page_offset, n_pages, payload) mmaps.
region_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=8),
        st.binary(min_size=1, max_size=256),
    ),
    min_size=1,
    max_size=12,
)

skip_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=16),
    ),
    max_size=4,
)


def build_process(specs):
    proc = SimProcess(aslr=False, seed=71)
    placed = []
    for pg, npages, payload in specs:
        addr = BASE + pg * PAGE_SIZE
        if proc.vas.overlapping(addr, npages * PAGE_SIZE):
            continue
        proc.vas.mmap(npages * PAGE_SIZE, addr=addr, fixed=True, tag="upper:x")
        proc.vas.write(addr, payload)
        placed.append((addr, payload))
    return proc, placed


@settings(max_examples=100, deadline=None)
@given(region_specs)
def test_checkpoint_restore_roundtrip_bit_exact(specs):
    proc, placed = build_process(specs)
    image = DmtcpCheckpointer(proc).checkpoint()
    fresh = SimProcess(aslr=False, seed=72)
    DmtcpCheckpointer(proc).restore_memory(image, fresh)
    for addr, payload in placed:
        assert fresh.vas.read(addr, len(payload)) == payload


@settings(max_examples=100, deadline=None)
@given(region_specs)
def test_incremental_chain_roundtrip(specs):
    """Write → full ckpt → write more → incremental ckpt → restore chain
    must equal the live state."""
    proc, placed = build_process(specs)
    ckpt = DmtcpCheckpointer(proc)
    base = ckpt.checkpoint()
    # Second generation of writes over the same regions.
    gen2 = []
    for i, (addr, payload) in enumerate(placed):
        data = bytes([i % 251]) * min(len(payload) + 7, 300)
        proc.vas.write(addr, data)
        gen2.append((addr, data))
    inc = ckpt.checkpoint(incremental=True, parent=base)
    fresh = SimProcess(aslr=False, seed=73)
    ckpt.restore_memory(inc, fresh)
    for addr, data in gen2:
        assert fresh.vas.read(addr, len(data)) == data


@settings(max_examples=100, deadline=None)
@given(region_specs, skip_specs)
def test_skip_ranges_never_leak_into_image(specs, skips):
    proc, placed = build_process(specs)
    skip_ranges = [
        (BASE + pg * PAGE_SIZE, npages * PAGE_SIZE) for pg, npages in skips
    ]

    class Veto(DmtcpPlugin):
        def skip_ranges(self):
            return skip_ranges

    image = DmtcpCheckpointer(proc, [Veto()]).checkpoint()
    for region in image.regions:
        for s_start, s_size in skip_ranges:
            # No saved region may intersect a vetoed range.
            assert region.start + region.size <= s_start or (
                region.start >= s_start + s_size
            )


@settings(max_examples=200)
@given(
    st.tuples(st.integers(0, 100), st.integers(1, 100)),
    st.lists(st.tuples(st.integers(0, 120), st.integers(1, 40)), max_size=5),
)
def test_subtract_ranges_properties(span, skips):
    lo, width = span
    hi = lo + width
    skips_se = [(s, sz) for s, sz in skips]
    parts = _subtract_ranges((lo, hi), skips_se)
    # Parts are disjoint, ordered, inside the span...
    for (a1, b1), (a2, b2) in zip(parts, parts[1:]):
        assert b1 <= a2
    for a, b in parts:
        assert lo <= a < b <= hi
        # ...and intersect no skip.
        for s, sz in skips_se:
            assert b <= s or a >= s + sz
    # Every point outside all skips is covered by some part.
    covered = sum(b - a for a, b in parts)
    skipped_inside = 0
    for x in range(lo, hi):
        if any(s <= x < s + sz for s, sz in skips_se):
            skipped_inside += 1
    assert covered == (hi - lo) - skipped_inside
