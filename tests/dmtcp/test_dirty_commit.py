"""Regression tests: dirty-state must survive aborted checkpoints.

The original pipeline cleared each region's dirty bits *during* the
checkpoint walk, so a fault at any later stage (region-save of a later
region, the store's image-write, a 2PC abort) permanently lost them and
the next incremental cut silently omitted those pages. Dirty clearing
now happens only at the image's durable commit point.
"""

import pytest

from repro.dmtcp import DmtcpCheckpointer
from repro.dmtcp.coordinator import DmtcpCoordinator
from repro.dmtcp.store import CheckpointStore
from repro.errors import InjectedFault
from repro.harness.fault_injection import FaultInjector, FaultSpec
from repro.linux import PAGE_SIZE, SimProcess


@pytest.fixture
def proc():
    return SimProcess(aslr=False, seed=5)


def _dirty_page_set(proc, addr):
    return set(proc.vas.find(addr).dirty)


class TestCommittedCheckpointClearsDirty:
    def test_direct_checkpoint_still_clears(self, proc):
        """The store-less path keeps its old semantics: a completed
        checkpoint *is* the commit point."""
        a = proc.vas.mmap(4 * PAGE_SIZE)
        proc.vas.write(a, b"x")
        c = DmtcpCheckpointer(proc)
        image = c.checkpoint()
        assert image.committed
        assert _dirty_page_set(proc, a) == set()

    def test_commit_is_idempotent(self, proc):
        a = proc.vas.mmap(PAGE_SIZE)
        proc.vas.write(a, b"x")
        c = DmtcpCheckpointer(proc)
        image = c.checkpoint()
        proc.vas.write(a, b"y")  # re-dirty after commit
        image.mark_committed()  # second commit must not clear new dirty
        assert _dirty_page_set(proc, a) == {0}

    def test_post_snapshot_dirty_survives_commit(self, proc):
        """Pages dirtied between snapshot and commit keep their bits —
        the property forked checkpointing relies on."""
        a = proc.vas.mmap(4 * PAGE_SIZE)
        proc.vas.write(a, b"x")
        c = DmtcpCheckpointer(proc)
        image = c.checkpoint(defer_commit=True)
        proc.vas.write(a + 2 * PAGE_SIZE, b"late")  # after the snapshot
        image.mark_committed()
        assert _dirty_page_set(proc, a) == {2}


class TestAbortedCheckpointPreservesDirty:
    def test_region_save_crash_keeps_dirty_for_next_cut(self, proc):
        """THE regression: crash mid-walk, then verify the next
        incremental cut still captures the pre-crash dirties."""
        a = proc.vas.mmap(8 * PAGE_SIZE, tag="upper:data")
        proc.vas.write(a, b"base")
        fi = FaultInjector()
        c = DmtcpCheckpointer(proc, fault_injector=fi)
        base = c.checkpoint()

        proc.vas.write(a + 3 * PAGE_SIZE, b"precious dirty data")
        # Crash while walking a *later* region than the data region: the
        # buggy code had already cleared the data region's bits by then.
        fi.arm(FaultSpec(
            "region-save",
            at_count=fi.visits["region-save"] + len(proc.vas.regions()),
        ))
        with pytest.raises(InjectedFault):
            c.checkpoint(incremental=True, parent=base)

        assert 3 in _dirty_page_set(proc, a), "crash lost the dirty bits"
        inc = c.checkpoint(incremental=True, parent=base)
        saved = {
            r.start + pg * PAGE_SIZE
            for r in inc.regions
            for pg in r.pages
        }
        assert a + 3 * PAGE_SIZE in saved, (
            "post-crash incremental cut omitted the pre-crash dirty page"
        )

        fresh = SimProcess(aslr=False)
        c.restore_memory(inc, fresh)
        assert fresh.vas.read(a + 3 * PAGE_SIZE, 19) == b"precious dirty data"

    def test_store_image_write_crash_keeps_dirty(self, proc):
        a = proc.vas.mmap(4 * PAGE_SIZE, tag="upper:data")
        proc.vas.write(a, b"v0")
        fi = FaultInjector()
        c = DmtcpCheckpointer(proc, fault_injector=fi)
        coord = DmtcpCoordinator(c)
        store = CheckpointStore(fault_injector=fi)
        base = coord.checkpoint(store=store)

        proc.vas.write(a + PAGE_SIZE, b"dirty")
        fi.arm(FaultSpec("image-write", at_count=fi.visits["image-write"] + 1))
        with pytest.raises(InjectedFault):
            coord.checkpoint(incremental=True, parent=base, store=store)

        assert store.discard_partials() == 1
        assert 1 in _dirty_page_set(proc, a)
        inc = coord.checkpoint(incremental=True, parent=base, store=store)
        assert inc.committed
        assert any(r.start == a and 1 in r.pages for r in inc.regions)
        assert _dirty_page_set(proc, a) == set()

    def test_2pc_abort_keeps_dirty(self, proc):
        a = proc.vas.mmap(4 * PAGE_SIZE, tag="upper:data")
        proc.vas.write(a, b"v0")
        fi = FaultInjector()
        c = DmtcpCheckpointer(proc, fault_injector=fi)
        coord = DmtcpCoordinator(c)
        store = CheckpointStore()
        base = coord.checkpoint(store=store)

        proc.vas.write(a + 2 * PAGE_SIZE, b"dirty")
        staged = coord.stage_checkpoint(
            store, incremental=True, parent=base
        )
        assert not staged.image.committed
        assert 2 in _dirty_page_set(proc, a), (
            "staging alone must not clear dirty bits"
        )
        fi.arm(FaultSpec("commit", at_count=fi.visits["commit"] + 1))
        with pytest.raises(InjectedFault):
            DmtcpCoordinator.two_phase_commit(
                [(store, staged)], fault_injector=fi
            )
        assert staged.aborted
        assert 2 in _dirty_page_set(proc, a), "2PC abort lost dirty bits"

        # The retried 2PC captures them and only then clears.
        staged2 = coord.stage_checkpoint(store, incremental=True, parent=base)
        DmtcpCoordinator.two_phase_commit([(store, staged2)])
        assert staged2.image.committed
        assert 2 not in _dirty_page_set(proc, a)


class TestSpeculationAbortPreservesDirty:
    """Speculation-abort × defer_commit: a rolled-back speculative cut
    must leave ALL dirty bits intact — ``mark_committed`` never runs on
    it, and nothing else may clear the epochs its snapshot pinned."""

    def test_aborted_speculation_keeps_all_dirty_bits(self):
        import numpy as np

        from repro.core import CracSession
        from repro.cuda.api import FatBinary

        session = CracSession(seed=7)
        session.backend.register_app_binary(FatBinary("s.fatbin", ("k",)))
        upper = session.split.upper_mmap(8 * PAGE_SIZE)
        session.process.vas.write(upper, b"pre-cut host")
        p = session.backend.malloc(4096)
        session.backend.device_view(p, 64)[:] = np.arange(64, dtype=np.uint8)

        pre_host = set(session.process.vas.find(upper).dirty)
        buf = session.runtime.buffers[p]
        pre_gpu = buf.contents.dirty_byte_count
        assert pre_host and pre_gpu > 0

        image = session.checkpoint(speculative=True)
        # Speculative cut defers the commit: nothing cleared yet.
        assert not image.committed
        assert set(session.process.vas.find(upper).dirty) >= pre_host
        assert buf.contents.dirty_byte_count >= pre_gpu

        # More dirtying inside the capture window, then roll back.
        session.process.vas.write(upper + 4 * PAGE_SIZE, b"in-window")
        session.backend.device_view(p, 16, offset=1024)[:] = 3
        session.abort_pending_writers()

        assert not image.committed
        host_dirty = set(session.process.vas.find(upper).dirty)
        assert pre_host <= host_dirty and 4 in host_dirty, (
            "speculation abort lost host dirty bits"
        )
        assert buf.contents.dirty_byte_count >= pre_gpu, (
            "speculation abort lost GPU dirty spans"
        )
        # Even a stray commit on the rolled-back image clears nothing.
        image.mark_committed()
        assert set(session.process.vas.find(upper).dirty) == host_dirty
        assert buf.contents.dirty_byte_count >= pre_gpu

        # The next (stop-the-world) cut captures everything and is the
        # one that finally clears.
        nxt = session.checkpoint()
        assert nxt.committed
        assert set(session.process.vas.find(upper).dirty) == set()
        assert buf.contents.dirty_byte_count == 0

    def test_defer_commit_alone_keeps_dirty_until_commit(self, proc):
        """The checkpointer-level defer_commit contract the speculative
        writer builds on."""
        a = proc.vas.mmap(4 * PAGE_SIZE)
        proc.vas.write(a, b"x")
        c = DmtcpCheckpointer(proc)
        image = c.checkpoint(defer_commit=True)
        assert not image.committed
        assert _dirty_page_set(proc, a) == {0}
        image.mark_committed()
        assert _dirty_page_set(proc, a) == set()


class TestGpuDirtyPreservation:
    def test_aborted_checkpoint_keeps_gpu_dirty_spans(self):
        """The same crash-consistency property for device buffers."""
        import numpy as np

        from repro.core import CracSession
        from repro.cuda.api import FatBinary

        fi = FaultInjector()
        session = CracSession(seed=9, fault_injector=fi)
        session.backend.register_app_binary(FatBinary("t.fatbin", ("k",)))
        store = CheckpointStore(fault_injector=fi)
        p = session.backend.malloc(4096)
        session.backend.device_view(p, 8)[:] = np.arange(8, dtype=np.uint8)
        base = session.checkpoint(store=store)

        session.backend.device_view(p, 8, offset=256)[:] = 7
        buf = session.runtime.buffers[p]
        assert buf.contents.dirty_byte_count > 0
        fi.arm(FaultSpec("image-write", at_count=fi.visits["image-write"] + 1))
        with pytest.raises(InjectedFault):
            session.checkpoint(incremental=True, parent=base, store=store)
        assert buf.contents.dirty_byte_count > 0, (
            "aborted checkpoint cleared GPU dirty spans"
        )

        inc = session.checkpoint(incremental=True, parent=base, store=store)
        entry = inc.blob("crac/buffers")[p]
        assert entry["delta"]
        assert any(
            lo <= 256 < lo + arr.nbytes
            for lo, arr in entry["snapshot"]["spans"].items()
        ) or entry["snapshot"].get("whole")
        assert buf.contents.dirty_byte_count == 0
