"""Tests for the crash-consistent checkpoint store."""

import pytest

from repro.core.session import CracSession
from repro.dmtcp.store import CheckpointStore
from repro.errors import (
    CheckpointStoreError,
    CorruptCheckpointError,
    InjectedFault,
)
from repro.harness.fault_injection import FaultInjector, FaultSpec


def make_session(seed=3):
    s = CracSession(seed=seed)
    ptr = s.backend.malloc(1 << 14)
    s.backend.memset(ptr, 0xAB, 1 << 14)
    # Back some upper-half pages so images carry host bytes to corrupt.
    host = s.split.upper_mmap(8192)
    s.process.vas.write(host, b"\xC3" * 8192)
    return s


class TestTwoPhaseCommit:
    def test_stage_then_commit_becomes_generation(self):
        s = make_session()
        store = CheckpointStore()
        staged = store.stage(s.checkpoint())
        assert staged.complete
        assert store.latest() is None  # not visible until committed
        gen = store.commit(staged)
        assert store.latest() == gen
        assert store.generations == [gen]

    def test_put_is_stage_plus_commit(self):
        s = make_session()
        store = CheckpointStore()
        gen = store.put(s.checkpoint())
        assert store.generations == [gen]

    def test_abort_discards_staged(self):
        s = make_session()
        store = CheckpointStore()
        staged = store.stage(s.checkpoint())
        store.abort(staged)
        assert store.latest() is None
        with pytest.raises(CheckpointStoreError):
            store.commit(staged)

    def test_crash_mid_write_leaves_discardable_partial(self):
        inj = FaultInjector([FaultSpec("image-write", at_count=2)])
        store = CheckpointStore(fault_injector=inj)
        s = make_session()
        image = s.checkpoint()
        with pytest.raises(InjectedFault):
            store.stage(image)
        (partial,) = store.partials()
        assert not partial.complete
        assert partial.written_regions < len(image.regions)
        # A torn image must never become a generation.
        with pytest.raises(CheckpointStoreError, match="partial"):
            store.commit(partial)
        assert store.discard_partials() == 1
        assert store.partials() == []
        assert store.latest() is None

    def test_generation_ids_are_monotone(self):
        s = make_session()
        store = CheckpointStore(keep_generations=5)
        gens = [store.put(s.checkpoint()) for _ in range(3)]
        assert gens == sorted(gens)
        assert store.generations == gens


class TestChecksums:
    def test_load_verifies_clean_image(self):
        s = make_session()
        store = CheckpointStore()
        gen = store.put(s.checkpoint())
        assert store.load(gen) is store.get(gen).image

    def test_corrupting_committed_bytes_fails_deterministically(self):
        s = make_session()
        store = CheckpointStore()
        gen = store.put(s.checkpoint())
        image = store.get(gen).image
        region = next(r for r in image.regions if r.pages)
        pg = min(region.pages)
        region.pages[pg] = b"\x00" * len(region.pages[pg])
        for _ in range(2):  # deterministic: fails the same way every time
            with pytest.raises(CorruptCheckpointError, match="checksum"):
                store.load(gen)

    def test_corruption_fault_kind_is_silent_until_restore(self):
        # probability=1: every staged region rots, including paged ones.
        inj = FaultInjector(
            [FaultSpec("image-write", probability=1.0, kind="corrupt",
                       max_fires=None)]
        )
        store = CheckpointStore(fault_injector=inj)
        s = make_session()
        gen = store.put(s.checkpoint())  # write "succeeds" silently
        with pytest.raises(CorruptCheckpointError):
            store.load(gen)

    def test_load_latest_by_default(self):
        s = make_session()
        store = CheckpointStore()
        store.put(s.checkpoint())
        g2 = store.put(s.checkpoint())
        assert store.load() is store.get(g2).image

    def test_load_empty_store_raises(self):
        with pytest.raises(CheckpointStoreError, match="no generations"):
            CheckpointStore().load()

    def test_incremental_chain_verified_through_parents(self):
        s = make_session()
        store = CheckpointStore()
        base = s.checkpoint()
        store.put(base)
        inc = s.checkpoint(incremental=True, parent=base)
        gen_inc = store.put(inc)
        # Corrupt the *base*: loading the increment must catch it.
        region = next(r for r in base.regions if r.pages)
        pg = min(region.pages)
        region.pages[pg] = bytes(len(region.pages[pg]))
        with pytest.raises(CorruptCheckpointError):
            store.load(gen_inc)


class TestRetention:
    def test_keep_n_evicts_oldest(self):
        s = make_session()
        store = CheckpointStore(keep_generations=2)
        gens = [store.put(s.checkpoint()) for _ in range(4)]
        assert store.generations == gens[-2:]
        assert store.evicted == 2

    def test_gc_protects_incremental_parents(self):
        """A base image a live chain still parents must survive keep-N."""
        s = make_session()
        store = CheckpointStore(keep_generations=1)
        base = s.checkpoint()
        gen_base = store.put(base)
        prev = base
        for _ in range(3):
            inc = s.checkpoint(incremental=True, parent=prev)
            store.put(inc)
            prev = inc
        # keep=1 would normally leave only the newest — but the newest
        # chains back through every increment to the base.
        assert gen_base in store.generations
        assert len(store.generations) == 4
        assert store.load() is prev  # and the whole chain verifies

    def test_gc_collects_unchained_when_full_checkpoints(self):
        s = make_session()
        store = CheckpointStore(keep_generations=1)
        for _ in range(3):
            store.put(s.checkpoint())  # full images: no parent links
        assert len(store.generations) == 1

    def test_invalid_keep(self):
        with pytest.raises(ValueError):
            CheckpointStore(keep_generations=0)

    def test_describe_mentions_generations(self):
        s = make_session()
        store = CheckpointStore()
        store.put(s.checkpoint())
        assert "1 generations" in store.describe()
