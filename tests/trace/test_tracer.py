"""Unit tests of the Tracer: spans, flow pairing, metrics, overhead."""

import pytest

from repro.gpu.timing import TRACE_HOOK_NS
from repro.trace import Tracer


@pytest.fixture
def traced_backend(backend):
    tracer = Tracer()
    tracer.attach(backend)
    return backend, tracer


def test_api_spans_recorded(traced_backend):
    backend, tracer = traced_backend
    ptr = backend.malloc(1024)
    backend.free(ptr)
    api = [s for s in tracer.spans if s.cat == "api"]
    names = [s.name for s in api]
    assert "cudaMalloc" in names and "cudaFree" in names
    for s in api:
        assert s.end_ns > s.start_ns
        assert s.track == "api"
    assert tracer.metrics.counter("api.calls").value >= 2


def test_launch_flow_pairing(traced_backend):
    backend, tracer = traced_backend
    backend.launch("k", duration_ns=10_000.0)
    launch = [s for s in tracer.spans if s.name == "cudaLaunchKernel"]
    kernel = [s for s in tracer.spans if s.cat == "kernel"]
    assert len(launch) == 1 and len(kernel) == 1
    assert launch[0].flow_phase == "s"
    assert kernel[0].flow_phase == "f"
    assert launch[0].flow_id == kernel[0].flow_id is not None
    assert kernel[0].track == "stream-0"


def test_copy_span_on_engine_track(traced_backend):
    backend, tracer = traced_backend
    ptr = backend.malloc(4096)
    backend.memcpy(ptr, b"\x01" * 4096, 4096, "h2d")
    copies = [s for s in tracer.spans if s.cat == "copy"]
    assert copies and copies[0].track == "copy-h2d"
    nbytes = dict(copies[0].args)["nbytes"]
    assert nbytes >= 4096  # wire size includes transfer framing
    assert tracer.metrics.counter("device.copied_bytes.h2d").value == nbytes


def test_overhead_charged_per_api_call(traced_backend):
    backend, tracer = traced_backend
    before = backend.process.clock_ns
    backend.device_synchronize()
    spent = backend.process.clock_ns - before
    assert tracer.overhead_ns == pytest.approx(
        TRACE_HOOK_NS * len([s for s in tracer.spans if s.cat == "api"])
    )
    assert spent >= TRACE_HOOK_NS  # the hook cost lands on the clock


def test_untraced_backend_charges_nothing(backend):
    t0 = backend.process.clock_ns
    backend.device_synchronize()
    cost_untraced = backend.process.clock_ns - t0
    tracer = Tracer()
    tracer.attach(backend)
    t1 = backend.process.clock_ns
    backend.device_synchronize()
    cost_traced = backend.process.clock_ns - t1
    assert cost_traced == pytest.approx(cost_untraced + TRACE_HOOK_NS)
    tracer.detach(backend)
    assert backend.tracer is None
    t2 = backend.process.clock_ns
    backend.device_synchronize()
    assert backend.process.clock_ns - t2 == pytest.approx(cost_untraced)


def test_begin_segment_bumps_and_marks(traced_backend):
    backend, tracer = traced_backend
    backend.launch("k", duration_ns=1_000.0)
    assert tracer.segment == 0
    tracer.begin_segment("restart", backend.process.clock_ns)
    assert tracer.segment == 1
    backend.launch("k2", duration_ns=1_000.0)
    segs = {s.name: s.segment for s in tracer.spans if s.cat == "kernel"}
    assert segs == {"k": 0, "k2": 1}
    marks = [i for i in tracer.instants if i.name == "segment:restart"]
    assert len(marks) == 1 and marks[0].track == "recovery"


def test_clamp_stream_truncates_and_drops(traced_backend):
    backend, tracer = traced_backend
    end = backend.runtime.cudaLaunchKernel("k", duration_ns=50_000.0)
    cut = end - 25_000.0
    tracer.clamp_stream(0, cut)
    spans = [s for s in tracer.spans if s.cat == "kernel"]
    assert len(spans) == 1
    assert spans[0].name == "aborted:k"
    assert spans[0].end_ns == cut
    # A span entirely after the cut is dropped.
    end2 = backend.runtime.cudaLaunchKernel("k2", duration_ns=1_000.0)
    tracer.clamp_stream(0, end2 - 2_000.0)
    names = [s.name for s in tracer.spans if s.cat == "kernel"]
    assert "k2" not in names and "aborted:k2" not in names


def test_device_busy_and_api_counter(traced_backend):
    backend, tracer = traced_backend
    backend.launch("k", duration_ns=5_000.0)
    backend.launch("k", duration_ns=7_000.0)
    busy = tracer.device_busy_ns()
    assert busy["kernel"] == pytest.approx(12_000.0)
    counter = tracer.api_call_counter()
    assert counter["cudaLaunchKernel"] == 2
    assert counter["cudaPushCallConfiguration"] == 2


def test_ckpt_and_recovery_spans(traced_backend):
    _, tracer = traced_backend
    tracer.ckpt_span("write", 10.0, 20.0, bytes=100)
    tracer.recovery_span("retry", 5.0, 6.0, attempt=1)
    assert tracer.metrics.counter("ckpt.write").value == 1
    assert tracer.metrics.counter("ckpt.write_ns").value == pytest.approx(10.0)
    assert tracer.metrics.counter("recovery.retry").value == 1
    tracks = {s.track for s in tracer.spans}
    assert {"ckpt", "recovery"} <= tracks


def test_metrics_snapshot_sorted_and_json_safe(traced_backend):
    import json

    backend, tracer = traced_backend
    backend.launch("k", duration_ns=3_000.0)
    snap = tracer.metrics.snapshot()
    assert list(snap["counters"]) == sorted(snap["counters"])
    json.dumps(snap)  # must be JSON-serializable as-is
    hist = snap["histograms"]["api.dispatch_ns"]
    assert hist["count"] == 3  # push + pop + launch
    assert hist["min"] > 0
