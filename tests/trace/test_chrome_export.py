"""Golden-file checks of the Chrome/Perfetto trace_event export.

Runs ``SimpleStreams`` under the trace bench and validates the exported
JSON the way Perfetto's importer would: required keys per phase type,
globally sorted timestamps, stable pid/tid assignment across exports,
and flow ids that appear exactly as start/finish pairs. Also cross-checks
the paper's eq. 2 against the traced API call spans.
"""

import json

import pytest

from repro.apps.simple_streams import SimpleStreams
from repro.harness.trace_bench import run_trace_bench
from repro.trace.export import (
    DEVICE_PID,
    HOST_PID,
    assign_tracks,
    to_chrome_trace,
)


@pytest.fixture(scope="module")
def bench():
    """One traced SimpleStreams run shared by every test here."""
    report, tracer, profiler = run_trace_bench(SimpleStreams, scale=0.05)
    return report, tracer, profiler


def test_bench_gates_pass(bench):
    report, _, _ = bench
    assert report["digest_match"]
    assert report["busy_match"]
    assert report["overhead_ratio"] <= report["max_overhead_ratio"]
    assert report["ok"]


def test_export_is_valid_trace_event_json(bench):
    _, tracer, _ = bench
    obj = to_chrome_trace(tracer, label="simple_streams")
    # Round-trips through JSON untouched.
    obj = json.loads(json.dumps(obj))
    events = obj["traceEvents"]
    assert events, "trace must not be empty"
    for ev in events:
        assert ev["ph"] in ("M", "X", "s", "f", "i")
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name")
            assert "name" in ev["args"]
        else:
            assert ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
            assert "cat" in ev
        if ev["ph"] == "f":
            assert ev["bp"] == "e"
        if ev["ph"] == "i":
            assert ev["s"] == "t"
    assert obj["otherData"]["label"] == "simple_streams"
    assert obj["otherData"]["metrics"]["counters"]


def test_events_sorted_by_timestamp(bench):
    _, tracer, _ = bench
    events = to_chrome_trace(tracer)["traceEvents"]
    timed = [e for e in events if e["ph"] != "M"]
    keys = [(e["ts"], e["pid"], e["tid"], e["ph"]) for e in timed]
    assert keys == sorted(keys)


def test_pid_tid_assignment_stable(bench):
    _, tracer, _ = bench
    first = assign_tracks(tracer)
    second = assign_tracks(tracer)
    assert first == second
    for track, (pid, _tid) in first.items():
        if track.startswith(("stream-", "copy-")):
            assert pid == DEVICE_PID
        else:
            assert pid == HOST_PID
    pairs = list(first.values())
    assert len(pairs) == len(set(pairs)), "(pid, tid) must be unique per track"
    # Exporting twice yields byte-identical JSON.
    a = json.dumps(to_chrome_trace(tracer), sort_keys=True)
    b = json.dumps(to_chrome_trace(tracer), sort_keys=True)
    assert a == b


def test_flow_ids_paired(bench):
    _, tracer, _ = bench
    events = to_chrome_trace(tracer)["traceEvents"]
    starts = [e["id"] for e in events if e["ph"] == "s"]
    finishes = [e["id"] for e in events if e["ph"] == "f"]
    assert starts, "SimpleStreams launches kernels, flows expected"
    assert sorted(starts) == sorted(finishes)
    assert len(starts) == len(set(starts)), "flow ids must be unique"


def test_eq2_matches_traced_spans_exactly(bench):
    report, tracer, profiler = bench
    span_calls = tracer.api_call_counter()
    assert profiler.total_calls_formula(span_calls) == sum(span_calls.values())
    assert report["eq2_ok"]
    launches = span_calls["cudaLaunchKernel"]
    assert launches == span_calls["cudaPushCallConfiguration"]
    assert launches == span_calls["cudaPopCallConfiguration"]


def test_per_stream_spans_sum_to_timeline_busy(bench):
    _, tracer, profiler = bench
    busy = tracer.device_busy_ns()
    timeline = profiler.timeline_report()
    assert busy["kernel"] == pytest.approx(timeline.kernel_busy_ns)
    assert busy["copy"] == pytest.approx(timeline.copy_busy_ns)
    streams = {
        s.track for s in tracer.spans if s.cat == "kernel"
    }
    assert len(streams) >= 2, "SimpleStreams uses multiple streams"
