"""Shared fixtures: a simulated machine (process + GPU + CUDA runtime)."""

import pytest

from repro.cuda.api import CudaRuntime, FatBinary
from repro.cuda.interface import NativeBackend
from repro.gpu.device import GpuDevice
from repro.gpu.timing import GPU_SPECS
from repro.linux.loader import ProgramImage, ProgramLoader
from repro.linux.process import ADDR_NO_RANDOMIZE, SimProcess


def build_machine(gpu="V100", aslr=False, fsgsbase=False, seed=11):
    """A process with a loaded lower half and a CUDA runtime in it."""
    proc = SimProcess(aslr=aslr, fsgsbase=fsgsbase, seed=seed)
    if not aslr:
        proc.personality(ADDR_NO_RANDOMIZE)
    loader = ProgramLoader(proc)
    loader.load(
        ProgramImage(
            name="helper",
            segments=ProgramImage.simple("helper", 16, 16).segments,
            libraries=(ProgramImage.simple("libcuda.so", 2048, 512),),
        ),
        "lower",
    )
    device = GpuDevice(GPU_SPECS[gpu])
    runtime = CudaRuntime(
        proc,
        device,
        mem_source=lambda size, tag: loader.mmap_for_half("lower", size, tag_leaf=tag),
    )
    return proc, loader, device, runtime


APP_FATBIN = FatBinary(name="app.fatbin", kernels=("k", "k2", "init_kernel"))


@pytest.fixture
def machine():
    return build_machine()


@pytest.fixture
def backend(machine):
    """A native backend with the test app's fat binary registered."""
    _, _, _, runtime = machine
    b = NativeBackend(runtime)
    b.register_app_binary(APP_FATBIN)
    return b
