"""The whole calibration as one invariant: every workload's runtime,
call count, and checkpoint size stay within tolerance of the paper's
targets at scale=1.0."""

import pytest

from repro.harness.calibration import (
    ALL_APP_CLASSES,
    calibration_table,
    measure_app,
    worst_error,
)


@pytest.mark.parametrize("cls", ALL_APP_CLASSES, ids=lambda c: c.name)
def test_app_calibrated_within_tolerance(cls):
    row = measure_app(cls, scale=1.0)
    assert row.runtime_error <= 0.25, (
        f"{cls.name} runtime {row.measured_runtime_s:.1f}s vs "
        f"target {row.target_runtime_s:.1f}s"
    )
    assert row.calls_error <= 0.25 + 50 / max(row.target_calls, 1), (
        f"{cls.name} calls {row.measured_calls} vs {row.target_calls}"
    )
    assert row.ckpt_error <= 0.25, (
        f"{cls.name} image {row.measured_ckpt_mb:.0f}MB vs "
        f"target {row.target_ckpt_mb:.0f}MB"
    )


def test_worst_error_reported():
    rows = calibration_table(scale=1.0, classes=ALL_APP_CLASSES[:3])
    name, err = worst_error(rows)
    assert name in {c.name for c in ALL_APP_CLASSES[:3]}
    assert 0.0 <= err <= 0.3
