"""Tests for the experiment runner."""

import pytest

from repro.apps.rodinia import Hotspot
from repro.harness import Machine, run_app
from repro.harness.runner import TIME_SCALE


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_app(Hotspot(scale=0.01), mode="blcr")

    @pytest.mark.parametrize("mode", ["native", "crac", "crum", "proxy-cma", "crcuda"])
    def test_all_modes_run_hotspot(self, mode):
        res = run_app(Hotspot(scale=0.01), mode=mode, noise=False)
        assert res.mode == mode
        assert res.runtime_exact_s > 0

    def test_mode_ordering_on_buffer_heavy_workload(self):
        """native < crum < naive proxy when buffers must cross the proxy
        boundary (the Table 3 regime)."""
        from repro.apps import CublasMicro

        times = {
            mode: run_app(
                CublasMicro(scale=0.005, routine="sdot", data_mb=10),
                mode=mode, noise=False,
            ).extras["ms_per_call"]
            for mode in ("native", "crum", "proxy-cma")
        }
        assert times["native"] < times["crum"] < times["proxy-cma"]

    def test_all_modes_same_digest(self):
        digests = {
            run_app(Hotspot(scale=0.01), mode=mode, noise=False).digest
            for mode in ("native", "crac", "crum", "proxy-cma", "crcuda")
        }
        assert len(digests) == 1


class TestNoiseModel:
    def test_noise_reproducible(self):
        r1 = run_app(Hotspot(scale=0.01), mode="native")
        r2 = run_app(Hotspot(scale=0.01), mode="native")
        assert r1.runtime_s == r2.runtime_s

    def test_noise_differs_per_mode(self):
        rn = run_app(Hotspot(scale=0.01), mode="native")
        rc = run_app(Hotspot(scale=0.01), mode="crac")
        assert rn.runtime_s - rn.runtime_exact_s != rc.runtime_s - rc.runtime_exact_s

    def test_noise_disabled_gives_exact(self):
        r = run_app(Hotspot(scale=0.01), mode="native", noise=False)
        assert r.runtime_s == r.runtime_exact_s


class TestMachines:
    def test_k600_slower_than_v100(self):
        v = run_app(Hotspot(scale=0.01), Machine.v100(), noise=False)
        k = run_app(Hotspot(scale=0.01), Machine.k600(), noise=False)
        assert k.runtime_exact_s > 2 * v.runtime_exact_s

    def test_time_scale_table(self):
        assert TIME_SCALE["V100"] == 1.0
        assert TIME_SCALE["K600"] > 1.0

    def test_fsgsbase_reduces_crac_time(self):
        plain = run_app(
            Hotspot(scale=0.05), Machine.k600(), mode="crac", noise=False
        )
        patched = run_app(
            Hotspot(scale=0.05), Machine.k600(fsgsbase=True), mode="crac",
            noise=False,
        )
        assert patched.runtime_exact_s < plain.runtime_exact_s


class TestCheckpointing:
    def test_checkpoint_record_fields(self):
        res = run_app(
            Hotspot(scale=0.01), mode="crac", checkpoint_at=0.5, noise=False
        )
        (rec,) = res.checkpoints
        assert rec.size_mb > 10  # at least the upper half
        assert rec.checkpoint_s > 0
        assert rec.restart_s > 0
        assert rec.replayed_calls >= 0

    def test_checkpoint_without_restart(self):
        res = run_app(
            Hotspot(scale=0.01), mode="crac", checkpoint_at=0.5,
            restart_after_checkpoint=False, noise=False,
        )
        (rec,) = res.checkpoints
        assert rec.restart_s is None

    def test_gzip_checkpoint_slower(self):
        plain = run_app(
            Hotspot(scale=0.01), mode="crac", checkpoint_at=0.5, noise=False
        )
        gz = run_app(
            Hotspot(scale=0.01), mode="crac", checkpoint_at=0.5, gzip=True,
            noise=False,
        )
        assert gz.checkpoints[0].checkpoint_s > plain.checkpoints[0].checkpoint_s

    def test_checkpoint_only_under_crac(self):
        res = run_app(
            Hotspot(scale=0.01), mode="native", checkpoint_at=0.5, noise=False
        )
        assert res.checkpoints == []
