"""Tests for the fault-tolerance economics module."""

import math

import pytest

from repro.harness.fault_tolerance import (
    RUNTIME_FAULT_CLASSES,
    FaultSimulator,
    daly_interval,
    expected_completion_time,
    format_fault_campaign,
    run_fault_campaign,
    run_guarded_app,
    run_rank_death_scenario,
    young_interval,
)


class TestIntervals:
    def test_young_formula(self):
        assert young_interval(1.0, 3600.0) == pytest.approx(math.sqrt(7200.0))

    def test_daly_close_to_young_for_small_cost(self):
        y = young_interval(0.5, 24 * 3600)
        d = daly_interval(0.5, 24 * 3600)
        assert abs(d - y) / y < 0.05

    def test_daly_clamps_for_huge_cost(self):
        assert daly_interval(10_000.0, 100.0) == 100.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            young_interval(0, 100)
        with pytest.raises(ValueError):
            daly_interval(1, 0)

    def test_interval_grows_with_mtbf(self):
        assert young_interval(1, 10_000) > young_interval(1, 1_000)


class TestAnalyticModel:
    def test_no_faults_limit(self):
        """With MTBF → ∞ the makespan approaches work + checkpoints."""
        t = expected_completion_time(
            work_s=1000, interval_s=100, checkpoint_cost_s=1,
            restart_cost_s=5, mtbf_s=1e12,
        )
        assert t == pytest.approx(1000 + 10 * 1, rel=1e-3)

    def test_faults_increase_makespan(self):
        kw = dict(work_s=1000, interval_s=100, checkpoint_cost_s=1,
                  restart_cost_s=5)
        assert (
            expected_completion_time(mtbf_s=500, **kw)
            > expected_completion_time(mtbf_s=50_000, **kw)
        )

    def test_youngs_interval_near_optimal(self):
        """The analytic makespan at Young's interval beats far-off ones."""
        kw = dict(work_s=10_000.0, checkpoint_cost_s=0.5,
                  restart_cost_s=2.0, mtbf_s=3_600.0)
        tau = young_interval(0.5, 3_600.0)
        at_tau = expected_completion_time(interval_s=tau, **kw)
        assert at_tau < expected_completion_time(interval_s=tau / 8, **kw)
        assert at_tau < expected_completion_time(interval_s=tau * 8, **kw)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            expected_completion_time(100, 0, 1, 1, 100)

    def test_invalid_work(self):
        with pytest.raises(ValueError):
            expected_completion_time(0, 10, 1, 1, 100)

    def test_invalid_mtbf(self):
        with pytest.raises(ValueError):
            expected_completion_time(100, 10, 1, 1, 0)

    def test_degenerate_regime_returns_infinity(self):
        """A segment far longer than the MTBF can never complete: the
        expected makespan diverges (explicitly, not via a 1e-300 fudge)."""
        t = expected_completion_time(
            work_s=1e6, interval_s=1e6, checkpoint_cost_s=1.0,
            restart_cost_s=5.0, mtbf_s=1.0,
        )
        assert math.isinf(t)


class TestSimulator:
    def test_reproducible(self):
        a = FaultSimulator(mtbf_s=100, seed=1).run_once(500, 50, 1, 5)
        b = FaultSimulator(mtbf_s=100, seed=1).run_once(500, 50, 1, 5)
        assert a == b

    def test_no_failures_when_mtbf_huge(self):
        out = FaultSimulator(mtbf_s=1e15, seed=2).run_once(500, 50, 1, 5)
        assert out.failures == 0
        assert out.makespan_s == pytest.approx(500 + 9 * 1)  # 9 ckpts

    def test_checkpointing_beats_restart_from_scratch_under_faults(self):
        """The paper's core economic argument: with realistic fault
        rates, CRAC's ~0.1 s checkpoints keep long jobs finishable."""
        sim = FaultSimulator(mtbf_s=400.0, seed=3)
        with_ckpt = sim.mean_makespan(
            work_s=2_000, interval_s=100, checkpoint_cost_s=0.5,
            restart_cost_s=2.0, runs=60,
        )
        sim2 = FaultSimulator(mtbf_s=400.0, seed=3)
        without = sim2.mean_makespan(
            work_s=2_000, interval_s=None, checkpoint_cost_s=0.0,
            restart_cost_s=2.0, runs=20,
        )
        assert with_ckpt < without / 2

    def test_simulation_tracks_analytic_model(self):
        """Monte-Carlo and the renewal formula agree within ~25%."""
        kw = dict(work_s=2_000.0, interval_s=120.0,
                  checkpoint_cost_s=1.0, restart_cost_s=4.0)
        analytic = expected_completion_time(mtbf_s=600.0, **kw)
        simulated = FaultSimulator(mtbf_s=600.0, seed=4).mean_makespan(
            runs=300, **kw
        )
        assert simulated == pytest.approx(analytic, rel=0.25)

    def test_work_lost_accounted(self):
        out = FaultSimulator(mtbf_s=80, seed=5).run_once(1000, 50, 1, 5)
        if out.failures:
            assert out.work_lost_s > 0

    def test_work_lost_bounded_by_interval_per_failure(self):
        """Each failure can lose at most one interval of mid-segment work
        plus one committed-but-unchecked segment — never more than 2τ."""
        out = FaultSimulator(mtbf_s=60, seed=6).run_once(2000, 50, 1, 5)
        assert out.failures > 0
        assert out.work_lost_s <= out.failures * 2 * 50

    def test_invalid_mtbf(self):
        with pytest.raises(ValueError):
            FaultSimulator(mtbf_s=0)


class TestSessionBackedSimulator:
    """The end-to-end mode: real CracSession + CheckpointStore + faults."""

    def test_reproducible(self):
        a = FaultSimulator(mtbf_s=40, seed=9).run_session_once(
            100.0, 10.0, ckpt_fault_prob=0.001, restore_fault_prob=0.2
        )
        b = FaultSimulator(mtbf_s=40, seed=9).run_session_once(
            100.0, 10.0, ckpt_fault_prob=0.001, restore_fault_prob=0.2
        )
        assert a == b

    def test_completes_all_work(self):
        out = FaultSimulator(mtbf_s=30, seed=10).run_session_once(80.0, 10.0)
        assert out.makespan_s >= 80.0
        assert out.checkpoints > 0

    def test_faults_roll_back_to_committed_generations(self):
        out = FaultSimulator(mtbf_s=15, seed=11).run_session_once(
            120.0, 10.0, restore_fault_prob=0.3
        )
        assert out.failures > 0
        assert out.restart_attempts >= out.failures
        assert len(out.generations_restored) == out.failures
        assert out.work_lost_s > 0

    def test_checkpoint_stage_faults_are_absorbed(self):
        """Torn writes abort the cut but never kill the job."""
        out = FaultSimulator(mtbf_s=200, seed=12).run_session_once(
            150.0, 10.0, ckpt_fault_prob=0.05
        )
        assert out.aborted_checkpoints > 0
        assert out.makespan_s >= 150.0  # all work still completed

    def test_cross_validation_tracks_analytic_model(self):
        """§1(a)/(b): the end-to-end pipeline (with checkpoint-stage
        faults enabled) agrees with Young/Daly within ~35%."""
        sim = FaultSimulator(mtbf_s=25.0, seed=13)
        cv = sim.cross_validate_session(
            150.0, 10.0, runs=3,
            ckpt_fault_prob=0.002, restore_fault_prob=0.1,
        )
        assert cv.checkpoint_cost_s > 0
        assert cv.restart_cost_s > 0
        assert cv.simulated_s == pytest.approx(cv.analytic_s, rel=0.35)
        assert cv.ratio == pytest.approx(cv.simulated_s / cv.analytic_s)

    def test_cross_validation_defaults_to_young_interval(self):
        sim = FaultSimulator(mtbf_s=50.0, seed=14)
        cv = sim.cross_validate_session(40.0, runs=1)
        assert cv.interval_s == pytest.approx(
            young_interval(cv.checkpoint_cost_s, 50.0)
        )


class TestFaultCampaign:
    @staticmethod
    def _app(name):
        from repro.apps.rodinia import RODINIA_SUITE

        return next(c for c in RODINIA_SUITE if c.name.lower() == name)

    def test_guarded_baseline_is_clean_and_deterministic(self):
        kmeans = self._app("kmeans")
        a = run_guarded_app(kmeans, scale=0.05, specs=[])
        b = run_guarded_app(kmeans, scale=0.05, specs=[])
        assert a.aborted is None and a.faults_fired == 0
        assert a.digest == b.digest
        assert a.runtime_s == pytest.approx(b.runtime_s)
        assert a.checkpoints >= 1  # the anchor generation at least
        assert a.stage_visits["ecc"] > 0  # sites were actually guarded
        assert a.rung_counts == {
            "retry": 0, "stream-reset": 0, "restore": 0, "failover": 0,
        }

    def test_campaign_exercises_all_three_rungs_bit_correctly(self):
        report = run_fault_campaign(
            [self._app("gaussian"), self._app("kmeans")],
            scale=0.05,
            fault_classes=["xfer-corrupt", "kernel-hang", "ecc"],
            mtbf_factors=(0.2,),
        )
        totals = report["totals"]
        for rung in ("retry", "stream-reset", "restore"):
            assert totals["rung_counts"][rung] > 0, f"{rung} never fired"
        assert totals["faults_fired"] > 0
        # Every recovered cell ended bit-identical to its fault-free run.
        assert totals["bit_correct"] + totals["aborted"] == totals["cells"]
        for app in report["apps"].values():
            for cell in app["cells"]:
                if cell["aborted"] is None:
                    assert cell["digest"] == app["baseline"]["digest"]
        assert report["rank_death_2pc"]["rank_death_raised"]
        text = format_fault_campaign(report)
        assert "bit-correct" in text and "rank-death 2PC" in text

    def test_classes_without_sites_are_reported_skipped(self):
        # No Rodinia app touches managed memory, so the uvm-storm stage
        # is never visited — the campaign must say so, not drop it.
        report = run_fault_campaign(
            [self._app("bfs")], scale=0.02, fault_classes=["uvm-storm"],
            mtbf_factors=(0.5,),
        )
        app = report["apps"]["BFS"]
        assert app["cells"] == []
        assert app["skipped"][0]["fault_class"] == "uvm-storm"

    def test_rank_death_scenario_recovers_prior_generation(self):
        out = run_rank_death_scenario(n_ranks=3, seed=1)
        assert out["rank_death_raised"]
        assert out["dead_ranks"] == [1]
        assert out["no_half_commit"]
        assert out["prior_state_restored"]
        assert out["recovered_generation"] is not None

    def test_fault_class_rung_map_matches_taxonomy(self):
        from repro.cuda.errors import CudaErrorCode, ErrorSeverity, classify

        entry = {
            "xfer-corrupt": CudaErrorCode.TRANSFER_CRC_MISMATCH,
            "uvm-storm": CudaErrorCode.UVM_FAULT_STORM,
            "kernel-hang": CudaErrorCode.LAUNCH_TIMEOUT,
            "copy-stall": CudaErrorCode.STREAM_STALLED,
            "ecc": CudaErrorCode.ECC_UNCORRECTABLE,
        }
        rung_for = {
            ErrorSeverity.RETRYABLE: "retry",
            ErrorSeverity.STICKY: "stream-reset",
            ErrorSeverity.FATAL: "restore",
        }
        for fault_class, expected_rung in RUNTIME_FAULT_CLASSES.items():
            assert rung_for[classify(entry[fault_class])] == expected_rung
