"""Tests for table and bar-chart rendering."""

from repro.harness.experiments import ExperimentRow
from repro.harness.report import render_bars, render_table


def rows():
    return [
        ExperimentRow("BFS", {"native_s": 2.7, "crac_s": 2.8}),
        ExperimentRow("NW", {"native_s": 64.5, "crac_s": 64.7}),
    ]


class TestRenderTable:
    def test_header_and_alignment(self):
        text = render_table("T", rows())
        lines = text.splitlines()
        assert lines[0] == "== T =="
        assert "native_s" in lines[1] and "crac_s" in lines[1]
        assert len({len(l) for l in lines[2:]}) <= 2  # aligned-ish

    def test_numeric_formatting(self):
        text = render_table("T", [ExperimentRow("x", {"v": 1234.5678})])
        assert "1,234.6" in text

    def test_int_formatting(self):
        text = render_table("T", [ExperimentRow("x", {"v": 1234567})])
        assert "1,234,567" in text


class TestRenderBars:
    def test_longest_bar_belongs_to_peak(self):
        text = render_bars("F", rows(), ["native_s", "crac_s"])
        lines = [l for l in text.splitlines() if "|" in l]
        bar_lens = [l.split("|")[1].count("█") + l.split("|")[1].count("░")
                    for l in lines]
        # NW's bars (the peak) are the longest.
        assert max(bar_lens[2:]) >= max(bar_lens[:2])

    def test_all_series_present(self):
        text = render_bars("F", rows(), ["native_s", "crac_s"])
        assert text.count("native_s") == 2
        assert text.count("crac_s") == 2

    def test_values_printed(self):
        text = render_bars("F", rows(), ["native_s"])
        assert "64.50s" in text

    def test_empty_rows(self):
        assert "(no rows)" in render_bars("F", [], ["x"])

    def test_zero_values_no_crash(self):
        text = render_bars("F", [ExperimentRow("z", {"v": 0.0})], ["v"])
        assert "0.00" in text
