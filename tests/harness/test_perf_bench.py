"""perf-bench harness: trace determinism, replay equality, gate math.

The full benchmark runs in CI (``repro perf-bench --smoke``); these
tests cover the pieces cheaply — tiny traces through both replay
paths, and the regression-gate arithmetic against synthetic reports.
"""

import pytest

from repro.gpu.dirty_legacy import LegacyDirtyIndex, LegacyWrittenSet
from repro.gpu.intervals import EpochIntervalIndex, SpanSet
from repro.harness.perf_bench import (
    RATIO_FLOOR,
    REGRESSION_LIMIT,
    access_trace,
    baseline_payload,
    dirty_trace,
    evaluate_gate,
    legacy_access_scan,
    replay_dirty,
    replay_written,
    vector_access_scan,
    written_trace,
)


class TestTraces:
    def test_traces_are_deterministic(self):
        assert dirty_trace(50, 1 << 12, 3) == dirty_trace(50, 1 << 12, 3)
        assert written_trace(50, 1 << 12, 3) == written_trace(50, 1 << 12, 3)
        a1, p1 = access_trace(20, 10, 1 << 12, 3)
        a2, p2 = access_trace(20, 10, 1 << 12, 3)
        assert [(x[:4]) for x in a1] == [(x[:4]) for x in a2]
        assert [c.clocks for *_, c in p1] == [c.clocks for *_, c in p2]

    def test_dirty_replay_equal(self):
        ops = dirty_trace(300, 1 << 12, seed=1)
        assert replay_dirty(LegacyDirtyIndex(), ops) == (
            replay_dirty(EpochIntervalIndex(), ops)
        )

    def test_written_replay_equal(self):
        ops = written_trace(300, 1 << 12, seed=2)
        assert replay_written(LegacyWrittenSet(), ops) == (
            replay_written(SpanSet(), ops)
        )

    def test_access_scan_equal(self):
        accesses, probes = access_trace(60, 40, 1 << 12, seed=4)
        assert legacy_access_scan(accesses, probes) == (
            vector_access_scan(accesses, probes)
        )


def _report(cal=0.1, cap=0.02, san=0.01, speedup=8.0):
    return {
        "version": 1,
        "smoke": True,
        "settings": {"scale": 1.0, "repeats": 3, "n_cuts": 4, "seed": 0,
                     "gpu": "V100", "apps": ["gaussian"]},
        "calibration_s": cal,
        "capture": {"wall_s": cap},
        "sanitize": {"wall_s": san},
        "micro": {
            "combined_speedup": speedup,
            "dirty": {"vector_s": 0.5},
            "access": {"vector_s": 0.05},
            "written": {"vector_s": 0.01},
        },
    }


class TestGate:
    def test_no_baseline_is_ok(self):
        gate = evaluate_gate(_report(), None)
        assert gate["ok"] and not gate["baseline_found"]

    def test_identical_run_passes(self):
        gate = evaluate_gate(_report(), baseline_payload(_report()))
        assert gate["baseline_found"]
        assert gate["max_ratio"] == pytest.approx(1.0)
        assert gate["ok"]

    def test_large_regression_fails(self):
        base = baseline_payload(_report())
        gate = evaluate_gate(_report(cap=0.5), base)
        assert gate["ratios"]["capture_wall_s"] > REGRESSION_LIMIT
        assert not gate["ok"]

    def test_slower_machine_is_normalized_away(self):
        """Everything (calibration included) 2x slower: all ratios 1."""
        base = baseline_payload(_report())
        cur = _report(cal=0.2, cap=0.04, san=0.02)
        gate = evaluate_gate(cur, base)
        assert gate["max_ratio"] == pytest.approx(1.0)
        assert gate["ok"]

    def test_tiny_metric_jitter_is_damped(self):
        """A few-ms metric doubling must not trip the gate (the floor
        keeps sub-calibration noise out of the ratio)."""
        base = baseline_payload(_report(san=0.004))
        gate = evaluate_gate(_report(san=0.009), base)
        assert gate["ratios"]["sanitize_wall_s"] < REGRESSION_LIMIT
        assert gate["ok"]

    def test_speedup_drop_fails(self):
        base = baseline_payload(_report(speedup=8.0))
        gate = evaluate_gate(_report(speedup=4.0), base)
        assert gate["ratios"]["micro_speedup"] > REGRESSION_LIMIT
        assert not gate["ok"]

    def test_floor_is_positive(self):
        assert RATIO_FLOOR > 0
        assert REGRESSION_LIMIT > 1.0


class TestBaselinePayload:
    def test_payload_carries_gate_inputs_only(self):
        pay = baseline_payload(_report())
        assert pay["calibration_s"] == 0.1
        assert pay["capture"] == {"wall_s": 0.02}
        assert pay["sanitize"] == {"wall_s": 0.01}
        assert pay["micro"]["combined_speedup"] == 8.0
        assert "checks" not in pay
