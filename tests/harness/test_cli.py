"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import APP_REGISTRY, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestListApps:
    def test_lists_all_registered_apps(self):
        code, text = run_cli("list-apps")
        assert code == 0
        for name in APP_REGISTRY:
            assert name in text

    def test_registry_covers_whole_suite(self):
        # 14 Rodinia + SS + UMS + LULESH + HPGMG + HYPRE + cublas
        assert len(APP_REGISTRY) == 20


class TestInfo:
    def test_shows_version_and_costs(self):
        code, text = run_cli("info")
        assert code == 0
        assert "V100" in text and "K600" in text
        assert "native_dispatch_ns" in text


class TestRun:
    def test_run_native(self):
        code, text = run_cli("run", "hotspot", "--scale", "0.01")
        assert code == 0
        assert "runtime:" in text
        assert "native" in text

    def test_run_crac_with_checkpoint(self):
        code, text = run_cli(
            "run", "bfs", "--mode", "crac", "--scale", "0.01",
            "--checkpoint-at", "0.5",
        )
        assert code == 0
        assert "checkpoint:" in text
        assert "restart:" in text

    def test_run_checkpoint_without_restart(self):
        code, text = run_cli(
            "run", "bfs", "--mode", "crac", "--scale", "0.01",
            "--checkpoint-at", "0.5", "--no-restart",
        )
        assert code == 0
        assert "checkpoint:" in text
        assert "restart:" not in text

    def test_run_on_k600(self):
        code, text = run_cli(
            "run", "hotspot", "--scale", "0.01", "--gpu", "K600",
        )
        assert code == 0
        assert "K600" in text

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("run", "doom")


class TestReproduce:
    def test_fig0(self):
        code, text = run_cli("reproduce", "fig0")
        assert code == 0
        assert "2019" in text

    def test_table2(self):
        code, text = run_cli("reproduce", "table2")
        assert code == 0
        assert "-s 8192 -q" in text

    def test_fig2_small_scale(self):
        code, text = run_cli("reproduce", "fig2", "--scale", "0.01")
        assert code == 0
        assert "Streamcluster" in text

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("reproduce", "fig99")


class TestCkptBench:
    def test_smoke_writes_report(self, tmp_path):
        out_path = tmp_path / "BENCH_delta_ckpt.json"
        code, text = run_cli(
            "ckpt-bench", "--apps", "bfs", "--scale", "0.02", "--cuts", "2",
            "--out", str(out_path),
        )
        assert code == 0
        assert "checkpoint-mode sweep" in text
        assert "forked" in text

        import json

        report = json.loads(out_path.read_text())
        assert len(report["cuts"]) == 2
        row = report["apps"]["BFS"]
        assert set(row["modes"]) == {"full", "incremental", "forked"}
        for mode in row["modes"].values():
            assert mode["runtime_s"] >= row["baseline_s"]
        assert "min_forked_reduction_pct" in report["summary"]

    def test_dash_out_skips_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, text = run_cli(
            "ckpt-bench", "--apps", "bfs", "--scale", "0.02", "--cuts", "1",
            "--out", "-",
        )
        assert code == 0
        assert not (tmp_path / "BENCH_delta_ckpt.json").exists()

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("ckpt-bench", "--apps", "doom")


class TestFaultCampaign:
    def test_smoke_writes_report(self, tmp_path):
        out_path = tmp_path / "BENCH_fault_campaign.json"
        code, text = run_cli(
            "fault-campaign", "--smoke", "--apps", "gaussian", "kmeans",
            "--mtbf-factors", "0.2", "--out", str(out_path),
        )
        assert code == 0
        assert "rank-death 2PC" in text
        assert "bit-correct" in text

        import json

        report = json.loads(out_path.read_text())
        totals = report["totals"]
        # The smoke sweep (one fault class per rung) must show every
        # ladder rung firing with bit-correct recovery.
        for rung in ("retry", "stream-reset", "restore"):
            assert totals["rung_counts"][rung] > 0
        assert totals["bit_correct"] + totals["aborted"] == totals["cells"]
        assert report["rank_death_2pc"]["no_half_commit"]
        assert report["rank_death_2pc"]["prior_state_restored"]
        assert set(report["apps"]) == {"Gaussian", "Kmeans"}

    def test_dash_out_skips_file(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code, _ = run_cli(
            "fault-campaign", "--smoke", "--apps", "bfs",
            "--classes", "xfer-corrupt", "--mtbf-factors", "0.5",
            "--out", "-",
        )
        assert code == 0
        assert not (tmp_path / "BENCH_fault_campaign.json").exists()

    def test_unknown_class_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("fault-campaign", "--classes", "gremlins")


class TestSpecBench:
    def test_smoke_writes_report(self, tmp_path):
        out_path = tmp_path / "BENCH_spec.json"
        code, text = run_cli(
            "spec-bench", "--smoke", "--apps", "kmeans", "--scale", "0.1",
            "--cuts", "1", "--baseline", "-", "--out", str(out_path),
        )
        assert code == 0
        assert "speculative-checkpoint bench" in text
        assert "forced conflict" in text

        import json

        report = json.loads(out_path.read_text())
        row = report["apps"]["Kmeans"]
        assert set(row["modes"]) == {"forked", "speculative"}
        assert row["digest_equal"]
        assert row["stall_ratio"] < 0.10
        assert report["forced_conflict"]["invalidated"] > 0
        assert report["forced_conflict"]["digest_equal"]
        assert report["ok"]

    def test_update_baseline_writes_payload(self, tmp_path):
        baseline_path = tmp_path / "BENCH_spec_baseline.json"
        code, _ = run_cli(
            "spec-bench", "--smoke", "--apps", "kmeans", "--scale", "0.1",
            "--cuts", "1", "--baseline", str(baseline_path),
            "--update-baseline", "--out", "-",
        )
        assert code == 0

        import json

        payload = json.loads(baseline_path.read_text())
        assert payload["benchmark"] == "spec-baseline"
        assert "Kmeans" in payload["stall_ratio"]

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("spec-bench", "--apps", "doom")


class TestAnalyzeUpdateBaseline:
    """--update-baseline must refuse missing/placeholder justifications
    (the old code stamped 'TODO: justify before committing', which the
    justification audit rejects)."""

    @pytest.fixture
    def fake_finding_report(self, monkeypatch):
        from repro.analysis.findings import Finding

        finding = Finding(
            "wiring", "wiring/test-rule", "repro/fake.py", 1, "planted"
        )
        report = {
            "findings": [finding.to_dict()],
            "baselined": [],
            "unused_baseline": [],
            "counts": {
                "apis": 0, "modules": 0, "unbaselined": 1, "baselined": 0,
            },
            "ok": False,
        }
        monkeypatch.setattr(
            "repro.analysis.engine.analyze_package",
            lambda *a, **kw: dict(report),
        )
        return finding

    def test_missing_justify_refused(self, tmp_path, fake_finding_report):
        baseline = tmp_path / "baseline.json"
        code, text = run_cli(
            "analyze", "--baseline", str(baseline), "--update-baseline",
            "--out", "-",
        )
        assert code == 2
        assert "--justify" in text
        assert not baseline.exists(), "refused update still wrote the file"

    @pytest.mark.parametrize("msg", [
        "TODO: justify before committing",
        "fixme later",
        "TBD",
        "xxx placeholder",
        "   ",
    ])
    def test_placeholder_justify_refused(self, tmp_path, msg,
                                         fake_finding_report):
        baseline = tmp_path / "baseline.json"
        code, _ = run_cli(
            "analyze", "--baseline", str(baseline), "--update-baseline",
            "--justify", msg, "--out", "-",
        )
        assert code == 2
        assert not baseline.exists()

    def test_real_justification_accepted(self, tmp_path, fake_finding_report):
        import json

        baseline = tmp_path / "baseline.json"
        code, text = run_cli(
            "analyze", "--baseline", str(baseline), "--update-baseline",
            "--justify", "planted by the CLI regression test",
            "--out", "-",
        )
        assert code == 0
        assert "accepted 1 finding(s)" in text
        entries = json.loads(baseline.read_text())["entries"]
        assert len(entries) == 1
        assert entries[0]["justification"] == (
            "planted by the CLI regression test"
        )
        # The committed-baseline audit's own rule: no TODO markers.
        assert "TODO" not in entries[0]["justification"]


class TestVersion:
    def test_version_flag(self):
        with pytest.raises(SystemExit) as exc:
            run_cli("--version")
        assert exc.value.code == 0
