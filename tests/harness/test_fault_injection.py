"""Tests for the seeded fault-injection harness."""

import pytest

from repro.errors import InjectedFault, ReplayDivergenceError
from repro.harness.fault_injection import FaultInjector, FaultSpec


class TestFaultSpec:
    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            FaultSpec("mid-lunch", at_count=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("restore", at_count=1, kind="meltdown")

    def test_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            FaultSpec("restore")
        with pytest.raises(ValueError):
            FaultSpec("restore", probability=0.5, at_count=1)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec("restore", probability=1.5)

    def test_at_count_is_one_based(self):
        with pytest.raises(ValueError):
            FaultSpec("restore", at_count=0)


class TestDeterministicFiring:
    def test_fires_on_nth_visit_only(self):
        inj = FaultInjector([FaultSpec("region-save", at_count=3)])
        assert inj.trip("region-save") is None
        assert inj.trip("region-save") is None
        assert inj.trip("region-save") == "crash"

    def test_max_fires_default_once(self):
        inj = FaultInjector([FaultSpec("restore", at_count=1)])
        assert inj.trip("restore") == "crash"
        assert inj.trip("restore") is None  # spent

    def test_fired_trail_records_context(self):
        inj = FaultInjector([FaultSpec("restore", at_count=2)])
        inj.trip("restore", "first")
        inj.trip("restore", "second")
        (fault,) = inj.fired
        assert fault.stage == "restore"
        assert fault.visit == 2
        assert fault.context == "second"

    def test_stages_counted_independently(self):
        inj = FaultInjector([FaultSpec("restore", at_count=1)])
        inj.trip("region-save")
        inj.trip("image-write")
        assert inj.trip("restore") == "crash"


class TestProbabilisticFiring:
    def test_seeded_and_reproducible(self):
        def schedule(seed):
            inj = FaultInjector(
                [FaultSpec("image-write", probability=0.3, max_fires=None)],
                seed=seed,
            )
            return [inj.trip("image-write") for _ in range(50)]

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_probability_zero_never_fires(self):
        inj = FaultInjector([FaultSpec("restore", probability=0.0)])
        assert all(inj.trip("restore") is None for _ in range(100))

    def test_probability_one_always_fires_until_spent(self):
        inj = FaultInjector(
            [FaultSpec("restore", probability=1.0, max_fires=2)]
        )
        assert inj.trip("restore") == "crash"
        assert inj.trip("restore") == "crash"
        assert inj.trip("restore") is None


class TestCheck:
    def test_crash_raises_injected_fault_with_stage(self):
        inj = FaultInjector([FaultSpec("precheckpoint", at_count=1)])
        with pytest.raises(InjectedFault) as exc:
            inj.check("precheckpoint", "crac plugin")
        assert exc.value.stage == "precheckpoint"
        assert "crac plugin" in str(exc.value)

    def test_divergence_kind_at_replay(self):
        inj = FaultInjector(
            [FaultSpec("replay", at_count=1, kind="divergence")]
        )
        with pytest.raises(ReplayDivergenceError):
            inj.check("replay")

    def test_corrupt_returned_when_site_is_corruptible(self):
        inj = FaultInjector(
            [FaultSpec("image-write", at_count=1, kind="corrupt")]
        )
        assert inj.check("image-write", corruptible=True) == "corrupt"

    def test_corrupt_treated_as_crash_elsewhere(self):
        inj = FaultInjector([FaultSpec("restore", at_count=1, kind="corrupt")])
        with pytest.raises(InjectedFault):
            inj.check("restore")

    def test_unknown_stage_at_trip_time(self):
        with pytest.raises(ValueError):
            FaultInjector().trip("nonsense")

    def test_arm_adds_spec(self):
        inj = FaultInjector()
        assert inj.trip("restore") is None
        inj.arm(FaultSpec("restore", at_count=2))
        assert inj.trip("restore") == "crash"

    def test_reset_counters_keeps_trail(self):
        inj = FaultInjector([FaultSpec("restore", at_count=1)])
        inj.trip("restore")
        inj.reset_counters()
        assert inj.visits["restore"] == 0
        assert len(inj.fired) == 1
