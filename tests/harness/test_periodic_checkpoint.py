"""Tests for periodic and incremental checkpointing through the runner."""

import pytest

from repro.apps.rodinia import Hotspot
from repro.apps import Lulesh
from repro.harness import run_app


class TestPeriodicCheckpoints:
    def test_multiple_checkpoints_taken(self):
        res = run_app(
            Hotspot(scale=0.02), mode="crac",
            checkpoint_at=[0.25, 0.5, 0.75], noise=False,
        )
        assert len(res.checkpoints) == 3
        progresses = [r.at_progress for r in res.checkpoints]
        assert progresses == sorted(progresses)

    def test_restart_only_after_last(self):
        res = run_app(
            Hotspot(scale=0.02), mode="crac",
            checkpoint_at=[0.3, 0.6, 0.9], noise=False,
        )
        assert res.checkpoints[0].restart_s is None
        assert res.checkpoints[1].restart_s is None
        assert res.checkpoints[2].restart_s is not None

    def test_periodic_run_output_identical_to_native(self):
        native = run_app(Lulesh(scale=0.02), mode="native", noise=False)
        periodic = run_app(
            Lulesh(scale=0.02), mode="crac",
            checkpoint_at=[0.2, 0.4, 0.6, 0.8], noise=False,
        )
        assert periodic.digest == native.digest


class TestIncrementalChains:
    def test_later_images_smaller_than_base(self):
        res = run_app(
            Hotspot(scale=0.02), mode="crac",
            checkpoint_at=[0.3, 0.6, 0.9], incremental=True,
            restart_after_checkpoint=False, noise=False,
        )
        sizes = [r.size_mb for r in res.checkpoints]
        assert sizes[1] < sizes[0] / 3
        assert sizes[2] < sizes[0] / 3

    def test_incremental_restart_transparent(self):
        native = run_app(Hotspot(scale=0.02), mode="native", noise=False)
        res = run_app(
            Hotspot(scale=0.02), mode="crac",
            checkpoint_at=[0.3, 0.6, 0.9], incremental=True, noise=False,
        )
        assert res.digest == native.digest
        assert res.checkpoints[-1].restart_s is not None

    def test_incremental_checkpoints_faster(self):
        res = run_app(
            Hotspot(scale=0.02), mode="crac",
            checkpoint_at=[0.3, 0.9], incremental=True,
            restart_after_checkpoint=False, noise=False,
        )
        base, inc = res.checkpoints
        assert inc.checkpoint_s < base.checkpoint_s
