"""Smoke + shape tests for every table/figure reproduction entry point.

Small scales keep these fast; the shape assertions encode the paper's
qualitative claims (see DESIGN.md §3 "shape criteria"). The full-scale
regeneration lives in benchmarks/.
"""

import pytest

from repro.harness import experiments as ex
from repro.harness.report import render_table

SCALE = 0.01


class TestFig0:
    def test_top500_series_monotone_growth(self):
        rows = ex.fig0_top500()
        counts = [r.values["systems"] for r in rows]
        assert counts[0] == 10
        assert counts[-1] == 136
        assert all(b >= a for a, b in zip(counts, counts[1:]))


class TestTable1:
    def test_feature_flags(self):
        rows = {r.label: r.values for r in ex.table1_characterization(SCALE)}
        assert rows["Rodinia"]["UVM"] == "✗"
        assert rows["HPGMG-FV"]["UVM"] == "✓"
        assert rows["HYPRE"]["UVM"] == "✓" and rows["HYPRE"]["Streams"] == "✓"
        assert rows["simpleStreams"]["# streams"] == "4–128"
        assert rows["LULESH"]["# streams"] == "2–32"


class TestTable2:
    def test_all_fifteen_rows(self):
        rows = ex.table2_cli_arguments()
        assert len(rows) == 15  # 14 Rodinia + LULESH
        args = {r.label: r.values["args"] for r in rows}
        assert args["Gaussian"] == "-s 8192 -q"
        assert args["LULESH"] == "-s 150"
        assert args["NW"] == "40960 10"


class TestFig2:
    def test_rows_and_digest_equality(self):
        rows = ex.fig2_rodinia_runtime(SCALE, noise=False)
        assert len(rows) == 14
        for r in rows:
            assert r.values["native_s"] > 0
            assert r.values["cuda_calls"] > 0


class TestFig3:
    def test_checkpoint_restart_rows(self):
        rows = ex.fig3_rodinia_checkpoint(SCALE)
        assert len(rows) == 14
        for r in rows:
            assert r.values["checkpoint_s"] > 0
            assert r.values["restart_s"] > 0
            assert r.values["size_mb"] > 10


class TestFig4:
    def test_sweep_shape(self):
        rows = ex.fig4_simplestreams(SCALE, iteration_counts=(5, 500))
        by = {r.label: r.values for r in rows}
        # Longer kernels ⇒ longer total runtime and longer per-kernel time.
        assert (
            by["niterations=500"]["native_total_s"]
            > by["niterations=5"]["native_total_s"]
        )
        assert (
            by["niterations=500"]["native_kernel_ms"]
            > by["niterations=5"]["native_kernel_ms"]
        )
        # Streamed per-kernel time stays far below non-streamed (Fig 4b).
        assert (
            by["niterations=500"]["native_streamed_ms"]
            < by["niterations=500"]["native_kernel_ms"] / 32
        )


class TestFig5:
    def test_runtime_rows(self):
        rows = ex.fig5_runtimes(SCALE, noise=False)
        assert [r.label for r in rows] == [
            "simpleStreams", "UnifiedMemoryStreams", "LULESH",
            "HPGMG-FV", "HYPRE",
        ]

    def test_checkpoint_rows(self):
        rows = ex.fig5c_checkpoint(SCALE)
        by = {r.label: r.values for r in rows}
        # HPGMG: replay-dominated restart (the paper's 1.75 s outlier).
        assert by["HPGMG-FV"]["replayed_calls"] > by["LULESH"]["replayed_calls"]
        # HYPRE: biggest image of the five.
        sizes = {k: v["size_mb"] for k, v in by.items()}
        assert max(sizes, key=sizes.get) == "HYPRE"


class TestTable3:
    def test_shape(self):
        rows = ex.table3_ipc_comparison(scale=0.005)
        assert len(rows) == 9
        for r in rows:
            v = r.values
            # CRAC ≈ native; CMA/IPC catastrophically slower (§4.4.4).
            assert v["crac_overhead_pct"] < 15
            assert v["cma_overhead_pct"] > 100
        by = {r.label: r.values for r in rows}
        # Sgemm's compute-bound native time shrinks the *relative* IPC
        # overhead (paper: 142–209% vs up to 17,812% for Sdot).
        assert (
            by["cublasSgemm 100MB"]["cma_overhead_pct"]
            < by["cublasSdot 100MB"]["cma_overhead_pct"] / 10
        )
        # Sdot's IPC overhead grows with data size.
        assert (
            by["cublasSdot 100MB"]["cma_overhead_pct"]
            > by["cublasSdot 1MB"]["cma_overhead_pct"]
        )


class TestFig6:
    def test_fsgsbase_never_hurts_much(self):
        rows = ex.fig6_fsgsbase(scale=0.01, noise=False)
        assert len(rows) == 14
        for r in rows:
            # The patch's effect is small and non-positive in exact time.
            assert r.values["overhead_delta_pct"] <= 0.5


class TestReport:
    def test_render_table(self):
        rows = ex.fig0_top500()
        text = render_table("TOP500", rows, "year")
        assert "TOP500" in text
        assert "2019" in text and "136" in text

    def test_render_empty(self):
        assert "(no rows)" in render_table("x", [])
