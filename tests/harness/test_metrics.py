"""Tests for the paper's formulas (§4.3)."""

import pytest

from repro.harness.metrics import cps, overhead_pct


class TestOverhead:
    def test_basic(self):
        assert overhead_pct(1.1, 1.0) == pytest.approx(10.0)

    def test_negative_overhead_allowed(self):
        """The paper observes negative overheads (Hotspot3D, Kmeans)."""
        assert overhead_pct(0.95, 1.0) == pytest.approx(-5.0)

    def test_zero_native_rejected(self):
        with pytest.raises(ValueError):
            overhead_pct(1.0, 0.0)


class TestCps:
    def test_basic(self):
        assert cps(1000, 2.0) == 500.0

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            cps(10, 0.0)
