"""Tests for dispatch-base mechanics: prepaid calls, external accounting,
thread context, and call-counting conventions."""

from collections import Counter

import pytest

from repro.cuda.interface import LAUNCH_ARG_BYTES, NativeBackend
from repro.core.halves import SplitProcess
from repro.cuda.api import FatBinary

FB = FatBinary("if.fatbin", ("k",))


@pytest.fixture
def nb():
    split = SplitProcess(seed=131)
    backend = NativeBackend(split.runtime)
    backend.register_app_binary(FB)
    return backend


class TestPrepaidCalls:
    def test_prepaid_suppresses_cost_and_count(self, nb):
        t0 = nb.process.clock_ns
        c0 = nb.total_calls
        with nb.prepaid_calls():
            p = nb.malloc(64)
            nb.free(p)
        assert nb.process.clock_ns == t0
        assert nb.total_calls == c0

    def test_prepaid_still_produces_state(self, nb):
        with nb.prepaid_calls():
            p = nb.malloc(64)
        assert p in nb.runtime.buffers

    def test_prepaid_nests(self, nb):
        with nb.prepaid_calls():
            with nb.prepaid_calls():
                nb.malloc(64)
            assert nb._prepaid_depth == 1
        assert nb._prepaid_depth == 0

    def test_prepaid_restored_after_exception(self, nb):
        with pytest.raises(RuntimeError):
            with nb.prepaid_calls():
                raise RuntimeError("boom")
        assert nb._prepaid_depth == 0


class TestExternalAccounting:
    def test_note_external_calls_multiplies(self, nb):
        nb.note_external_calls(Counter({"cudaLaunchKernel": 3}), repeats=5)
        assert nb.call_counter["cudaLaunchKernel"] == 15

    def test_note_external_has_no_cost(self, nb):
        t0 = nb.process.clock_ns
        nb.note_external_calls(Counter({"cudaMalloc": 1000}), repeats=1000)
        assert nb.process.clock_ns == t0


class TestThreadContext:
    def test_default_thread_is_none(self, nb):
        assert nb.current_thread is None

    def test_use_thread_scopes(self, nb):
        t = nb.process.spawn_thread()
        with nb.use_thread(t):
            assert nb.current_thread is t
            nb.malloc(64)  # works inside a thread context
        assert nb.current_thread is None

    def test_use_thread_nested(self, nb):
        t1 = nb.process.spawn_thread()
        t2 = nb.process.spawn_thread()
        with nb.use_thread(t1):
            with nb.use_thread(t2):
                assert nb.current_thread is t2
            assert nb.current_thread is t1


class TestCallConventions:
    def test_launch_arg_bytes_constant(self):
        assert LAUNCH_ARG_BYTES == 256

    def test_every_api_method_counts_exactly_once(self, nb):
        """Spot-check the non-launch entry points count 1 each."""
        checks = [
            ("malloc", (64,), "cudaMalloc"),
            ("malloc_host", (64,), "cudaMallocHost"),
            ("host_alloc", (64,), "cudaHostAlloc"),
            ("malloc_managed", (1 << 16,), "cudaMallocManaged"),
            ("device_synchronize", (), "cudaDeviceSynchronize"),
            ("stream_create", (), "cudaStreamCreate"),
            ("event_create", (), "cudaEventCreate"),
            ("get_device_properties", (), "cudaGetDeviceProperties"),
            ("mem_get_info", (), "cudaMemGetInfo"),
            ("get_device_count", (), "cudaGetDeviceCount"),
        ]
        for method, args, api in checks:
            before = nb.call_counter[api]
            getattr(nb, method)(*args)
            assert nb.call_counter[api] == before + 1, api

    def test_register_app_binary_counts_functions(self, nb):
        fb = FatBinary("many.fatbin", ("a", "b", "c"))
        before = nb.call_counter["__cudaRegisterFunction"]
        nb.register_app_binary(fb)
        assert nb.call_counter["__cudaRegisterFunction"] == before + 3
