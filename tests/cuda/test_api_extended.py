"""Tests for the extended CUDA API surface (queries, prefetch, info)."""

import numpy as np
import pytest

from repro.errors import CudaError
from repro.cuda.api import ManagedUse
from repro.gpu.uvm import UVM_PAGE, PageLocation


class TestMemGetInfo:
    def test_free_decreases_with_allocations(self, backend):
        free0, total = backend.mem_get_info()
        assert free0 == total
        backend.malloc(1 << 20)
        free1, _ = backend.mem_get_info()
        assert free0 - free1 >= 1 << 20

    def test_free_recovers_after_free(self, backend):
        p = backend.malloc(1 << 20)
        backend.free(p)
        free, total = backend.mem_get_info()
        assert free == total


class TestPointerAttributes:
    def test_device_pointer(self, backend):
        p = backend.malloc(4096)
        attrs = backend.pointer_get_attributes(p + 100)  # interior pointer
        assert attrs["type"] == "device"
        assert attrs["devicePointer"] == p
        assert attrs["size"] == 4096

    def test_managed_pointer(self, backend):
        p = backend.malloc_managed(UVM_PAGE)
        assert backend.pointer_get_attributes(p)["type"] == "managed"

    def test_pinned_pointer(self, backend):
        p = backend.malloc_host(512)
        assert backend.pointer_get_attributes(p)["type"] == "host-pinned"

    def test_unregistered_pointer(self, backend):
        assert backend.pointer_get_attributes(0xDEAD)["type"] == "unregistered"


class TestQueries:
    def test_stream_query_false_while_busy(self, machine, backend):
        s = backend.stream_create()
        backend.launch("k", duration_ns=10_000_000, stream=s)
        assert not backend.stream_query(s)
        backend.stream_synchronize(s)
        assert backend.stream_query(s)

    def test_event_query(self, backend):
        s = backend.stream_create()
        e = backend.event_create()
        assert not backend.event_query(e)  # never recorded
        backend.launch("k", duration_ns=5_000_000, stream=s)
        backend.event_record(e, s)
        assert not backend.event_query(e)  # still in flight
        backend.event_synchronize(e)
        assert backend.event_query(e)


class TestPrefetch:
    def test_prefetch_moves_residency_to_device(self, backend):
        p = backend.malloc_managed(4 * UVM_PAGE)
        backend.mem_prefetch(p, 4 * UVM_PAGE, to_device=True)
        buf = backend.runtime.buffers[p]
        assert np.all(buf.residency == int(PageLocation.DEVICE))

    def test_prefetch_back_to_host(self, backend):
        p = backend.malloc_managed(2 * UVM_PAGE)
        backend.mem_prefetch(p, 2 * UVM_PAGE, to_device=True)
        backend.mem_prefetch(p, 2 * UVM_PAGE, to_device=False)
        buf = backend.runtime.buffers[p]
        assert np.all(buf.residency == int(PageLocation.HOST))

    def test_prefetch_avoids_kernel_fault_stall(self, machine, backend):
        """A prefetched kernel launch runs faster than a faulting one
        (the whole point of cudaMemPrefetchAsync)."""
        proc, _, device, _ = machine
        n = 64 * UVM_PAGE

        def kernel_time(prefetch):
            p = backend.malloc_managed(n)
            if prefetch:
                backend.mem_prefetch(p, n, to_device=True)
                backend.device_synchronize()
            t0 = proc.clock_ns
            backend.launch("k", managed=[ManagedUse(p, 0, n, "r")],
                           duration_ns=1000)
            backend.device_synchronize()
            elapsed = proc.clock_ns - t0
            backend.free(p)
            return elapsed

        assert kernel_time(prefetch=True) < kernel_time(prefetch=False) / 2

    def test_prefetch_of_device_pointer_rejected(self, backend):
        p = backend.malloc(4096)
        with pytest.raises(CudaError):
            backend.mem_prefetch(p, 4096)

    def test_prefetch_is_idempotent(self, backend):
        p = backend.malloc_managed(UVM_PAGE)
        backend.mem_prefetch(p, UVM_PAGE, to_device=True)
        faults_before = backend.runtime.uvm.fault_count
        backend.mem_prefetch(p, UVM_PAGE, to_device=True)
        assert backend.runtime.uvm.fault_count == faults_before
