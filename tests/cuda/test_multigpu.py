"""Multi-GPU support: the paper's nodes carry four V100s (§4.1)."""

import numpy as np
import pytest

from repro.errors import CudaError
from repro.core import CracSession
from repro.core.halves import SplitProcess
from repro.cuda.api import FatBinary
from repro.cuda.interface import NativeBackend

FB = FatBinary("mg.fatbin", ("k",))


def make_backend(n_gpus=4):
    split = SplitProcess(seed=61, n_gpus=n_gpus)
    backend = NativeBackend(split.runtime)
    backend.register_app_binary(FB)
    return split, backend


class TestDeviceSelection:
    def test_device_count(self):
        _, b = make_backend(4)
        assert b.get_device_count() == 4

    def test_set_get_device(self):
        _, b = make_backend(4)
        assert b.get_device() == 0
        b.set_device(2)
        assert b.get_device() == 2

    def test_set_device_out_of_range(self):
        _, b = make_backend(2)
        with pytest.raises(CudaError):
            b.set_device(2)

    def test_single_gpu_default(self):
        split = SplitProcess(seed=62)
        assert len(split.runtime.devices) == 1


class TestPerDeviceMemory:
    def test_allocations_tagged_with_device(self):
        _, b = make_backend(2)
        p0 = b.malloc(1024)
        b.set_device(1)
        p1 = b.malloc(1024)
        assert b.runtime.buffers[p0].device_index == 0
        assert b.runtime.buffers[p1].device_index == 1

    def test_per_device_capacity(self):
        """Each GPU has its own 32 GB — allocating 20 GB on each works,
        while 40 GB on one device would not."""
        _, b = make_backend(2)
        b.malloc(20 << 30)
        b.set_device(1)
        b.malloc(20 << 30)  # fine: a different GPU's memory
        with pytest.raises(CudaError):
            b.malloc(20 << 30)  # device 1 is now over capacity

    def test_free_works_from_any_current_device(self):
        _, b = make_backend(2)
        p0 = b.malloc(1024)
        b.set_device(1)
        b.free(p0)  # UVA: frees route to the owning device

    def test_mem_get_info_is_per_device(self):
        _, b = make_backend(2)
        b.malloc(1 << 30)
        free0, total = b.mem_get_info()
        b.set_device(1)
        free1, _ = b.mem_get_info()
        assert free1 == total
        assert free0 < free1


class TestPerDeviceExecution:
    def test_kernels_on_different_gpus_overlap(self):
        split, b = make_backend(2)
        b.set_device(0)
        s0 = b.stream_create()
        b.set_device(1)
        s1 = b.stream_create()
        e0 = b.launch("k", duration_ns=1_000_000, stream=s0)
        e1 = b.launch("k", duration_ns=1_000_000, stream=s1)
        # Full overlap: separate devices, separate compute resources.
        assert abs(e0 - e1) < 50_000

    def test_copies_on_different_gpus_use_separate_engines(self):
        split, b = make_backend(2)
        data = np.zeros(12 << 20, dtype=np.uint8)  # ~1 ms over PCIe
        p0 = b.malloc(data.nbytes)
        b.set_device(1)
        p1 = b.malloc(data.nbytes)
        s1 = b.stream_create()
        b.set_device(0)
        s0 = b.stream_create()
        b.memcpy(p0, data, data.nbytes, "h2d", stream=s0, async_=True)
        b.memcpy(p1, data, data.nbytes, "h2d", stream=s1, async_=True)
        t0 = s0.ready_ns
        t1 = s1.ready_ns
        assert abs(t0 - t1) < 100_000  # parallel PCIe transfers

    def test_default_stream_launch_on_secondary_device_rejected(self):
        _, b = make_backend(2)
        b.set_device(1)
        with pytest.raises(CudaError, match="default-stream"):
            b.launch("k")

    def test_device_synchronize_covers_current_device(self):
        split, b = make_backend(2)
        b.set_device(1)
        s1 = b.stream_create()
        b.launch("k", duration_ns=5_000_000, stream=s1)
        b.device_synchronize()  # current device = 1
        assert split.process.clock_ns >= 5_000_000


class TestPeerCopy:
    def test_memcpy_peer_moves_content(self):
        _, b = make_backend(2)
        p0 = b.malloc(64)
        b.device_view(p0, 8)[:] = np.frombuffer(b"gpu0data", np.uint8)
        b.set_device(1)
        p1 = b.malloc(64)
        b.memcpy_peer(p1, p0, 64)
        assert b.device_view(p1, 8).tobytes() == b"gpu0data"

    def test_peer_copy_costs_transfer_time(self):
        split, b = make_backend(2)
        p0 = b.malloc(12 << 20)
        b.set_device(1)
        p1 = b.malloc(12 << 20)
        t0 = split.process.clock_ns
        b.memcpy_peer(p1, p0, 12 << 20)
        assert split.process.clock_ns - t0 > 500_000


class TestMultiGpuCrac:
    def test_checkpoint_restart_multi_gpu(self):
        """CRAC restores allocations to the right GPU at restart."""
        session = CracSession(seed=63, n_gpus=2)
        b = session.backend
        b.register_app_binary(FB)
        p0 = b.malloc(256)
        b.device_view(p0, 4)[:] = np.frombuffer(b"dev0", np.uint8)
        b.set_device(1)
        p1 = b.malloc(256)
        b.device_view(p1, 4)[:] = np.frombuffer(b"dev1", np.uint8)
        s1 = b.stream_create()
        b.set_device(0)

        image = session.checkpoint()
        session.kill()
        session.restart(image)

        b = session.backend
        assert b.runtime.buffers[p0].device_index == 0
        assert b.runtime.buffers[p1].device_index == 1
        assert b.device_view(p0, 4).tobytes() == b"dev0"
        assert b.device_view(p1, 4).tobytes() == b"dev1"
        assert s1.sid in b.runtime.streams
        assert b.runtime.current_device == 0  # cudaSetDevice state kept

    def test_replay_reproduces_cross_device_addresses(self):
        session = CracSession(seed=64, n_gpus=3)
        b = session.backend
        b.register_app_binary(FB)
        addrs = []
        for dev in (0, 2, 1, 0, 2):
            b.set_device(dev)
            addrs.append(b.malloc(4096))
        image = session.checkpoint()
        session.kill()
        session.restart(image)
        for a in addrs:
            assert a in session.runtime.buffers

    def test_current_device_restored_after_restart(self):
        session = CracSession(seed=65, n_gpus=2)
        b = session.backend
        b.register_app_binary(FB)
        b.malloc(64)
        b.set_device(1)
        b.malloc(64)
        image = session.checkpoint()  # app was on device 1
        session.kill()
        session.restart(image)
        assert session.runtime.current_device == 1
