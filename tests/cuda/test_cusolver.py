"""Tests for the cuSolver extension (§6 future work)."""

import numpy as np
import pytest

from repro.errors import CudaError
from repro.cuda.cusolver import CuSolverDn


@pytest.fixture
def solver(backend):
    return CuSolverDn(backend)


def upload(backend, arr):
    p = backend.malloc(arr.nbytes)
    backend.memcpy(p, np.ascontiguousarray(arr), arr.nbytes, "h2d")
    return p


def spd_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(np.float32)
    return a @ a.T + n * np.eye(n, dtype=np.float32)


class TestPotrf:
    def test_cholesky_correct(self, backend, solver):
        n = 16
        a = spd_matrix(n)
        pa = upload(backend, a)
        solver.potrf(pa, n)
        L = np.tril(backend.device_view(pa, 4 * n * n, np.float32).reshape(n, n))
        np.testing.assert_allclose(L @ L.T, a, rtol=1e-3, atol=1e-2)

    def test_non_spd_rejected(self, backend, solver):
        n = 8
        a = -np.eye(n, dtype=np.float32)
        pa = upload(backend, a)
        with pytest.raises(CudaError, match="potrf"):
            solver.potrf(pa, n)


class TestGetrf:
    def test_lu_reconstructs(self, backend, solver):
        n = 12
        rng = np.random.default_rng(1)
        a = rng.standard_normal((n, n)).astype(np.float32) + n * np.eye(n, dtype=np.float32)
        pa = upload(backend, a)
        piv = backend.malloc(4 * n)
        solver.getrf(pa, piv, n)
        lu = backend.device_view(pa, 4 * n * n, np.float32).reshape(n, n)
        p = backend.device_view(piv, 4 * n, np.int32)
        L = np.tril(lu, -1) + np.eye(n, dtype=np.float32)
        U = np.triu(lu)
        np.testing.assert_allclose((L @ U), a[p], rtol=1e-3, atol=1e-2)

    def test_singular_rejected(self, backend, solver):
        n = 8
        a = np.zeros((n, n), dtype=np.float32)
        pa = upload(backend, a)
        piv = backend.malloc(4 * n)
        with pytest.raises(CudaError, match="singular"):
            solver.getrf(pa, piv, n)


class TestGeqrf:
    def test_qr_reconstructs(self, backend, solver):
        n, m = 10, 6
        rng = np.random.default_rng(2)
        a = rng.standard_normal((n, m)).astype(np.float32)
        pa = upload(backend, a)
        pq = backend.malloc(4 * n * n)
        solver.geqrf(pa, pq, n, m)
        r = backend.device_view(pa, 4 * n * m, np.float32).reshape(n, m)
        q = backend.device_view(pq, 4 * n * n, np.float32).reshape(n, n)
        np.testing.assert_allclose(q @ r, a, rtol=1e-3, atol=1e-2)
        np.testing.assert_allclose(q @ q.T, np.eye(n), atol=1e-4)


class TestDispatchStructure:
    def test_one_upper_call_per_routine(self, backend, solver):
        n = 8
        pa = upload(backend, spd_matrix(n))
        before = backend.total_calls
        solver.potrf(pa, n)
        assert backend.call_counter["cusolverDnSpotrf"] == 1
        assert backend.total_calls - before == 1

    def test_survives_crac_checkpoint_restart(self):
        """The §6 extension inherits CRAC's support automatically: the
        result of a cuSolver factorization survives kill+restart."""
        from repro.core import CracSession

        session = CracSession(seed=23)
        b = session.backend
        solver = CuSolverDn(b)
        n = 12
        a = spd_matrix(n, seed=5)
        pa = b.malloc(a.nbytes)
        b.memcpy(pa, a, a.nbytes, "h2d")
        solver.potrf(pa, n)
        expect = b.device_view(pa, 4 * n * n, np.float32).copy()

        image = session.checkpoint()
        session.kill()
        session.restart(image)
        # cuSolver (a lower-half library) must be re-initialized against
        # the fresh lower half, as CRAC does for the app's fat binaries.
        CuSolverDn(session.backend)
        got = session.backend.device_view(pa, 4 * n * n, np.float32)
        np.testing.assert_array_equal(got, expect)
