"""Unit tests for the CUDA runtime library stand-in."""

import numpy as np
import pytest

from repro.errors import CudaError
from repro.cuda.api import FatBinary, ManagedUse
from repro.gpu.uvm import UVM_PAGE

from tests.conftest import APP_FATBIN, build_machine


class TestMemoryApi:
    def test_malloc_free_roundtrip(self, backend):
        p = backend.malloc(1024)
        backend.free(p)
        with pytest.raises(CudaError):
            backend.free(p)

    def test_malloc_arena_is_lower_half(self, machine, backend):
        _, loader, _, _ = machine
        p = backend.malloc(1024)
        assert loader.half_of(p) == "lower"

    def test_malloc_host_and_hostalloc_are_distinct_entry_points(self, backend):
        backend.malloc_host(64)
        backend.host_alloc(64)
        assert backend.runtime.api_log["cudaMallocHost"] == 1
        assert backend.runtime.api_log["cudaHostAlloc"] == 1

    def test_free_host(self, backend):
        p = backend.malloc_host(64)
        backend.free_host(p)
        with pytest.raises(CudaError):
            backend.free_host(p)

    def test_free_host_of_device_ptr_rejected(self, backend):
        p = backend.malloc(64)
        with pytest.raises(CudaError):
            backend.free_host(p)

    def test_managed_alloc_and_free(self, backend):
        p = backend.malloc_managed(UVM_PAGE)
        backend.free(p)  # cudaFree handles managed pointers too

    def test_active_allocations_excludes_freed(self, backend):
        p1 = backend.malloc(64)
        p2 = backend.malloc(64)
        backend.free(p1)
        active = backend.runtime.active_allocations()
        assert [b.addr for b in active] == [p2]

    def test_oom(self, machine):
        from repro.cuda.interface import NativeBackend

        proc, loader, device, runtime = machine
        b = NativeBackend(runtime)
        with pytest.raises(CudaError):
            b.malloc(device.spec.memory_bytes + 1)


class TestMemcpy:
    def test_h2d_d2h_roundtrip_with_numpy(self, backend):
        data = np.arange(256, dtype=np.float32)
        p = backend.malloc(data.nbytes)
        backend.memcpy(p, data, data.nbytes, "h2d")
        out = np.zeros_like(data)
        backend.memcpy(out, p, data.nbytes, "d2h")
        np.testing.assert_array_equal(out, data)

    def test_h2d_from_vas_address(self, machine, backend):
        proc, loader, _, _ = machine
        host = loader.mmap_for_half("upper", 4096)
        proc.vas.write(host, b"payload!")
        p = backend.malloc(8)
        backend.memcpy(p, host, 8, "h2d")
        assert backend.device_view(p, 8).tobytes() == b"payload!"

    def test_d2h_to_vas_address(self, machine, backend):
        proc, loader, _, _ = machine
        host = loader.mmap_for_half("upper", 4096)
        p = backend.malloc(8)
        backend.device_view(p, 8)[:] = np.frombuffer(b"devbytes", dtype=np.uint8)
        backend.memcpy(host, p, 8, "d2h")
        assert proc.vas.read(host, 8) == b"devbytes"

    def test_d2d(self, backend):
        a = backend.malloc(16)
        b = backend.malloc(16)
        backend.device_view(a, 16)[:] = 7
        backend.memcpy(b, a, 16, "d2d")
        assert np.all(backend.device_view(b, 16) == 7)

    def test_sync_memcpy_blocks_host(self, machine, backend):
        proc, _, _, _ = machine
        data = np.zeros(1 << 20, dtype=np.uint8)
        p = backend.malloc(data.nbytes)
        before = proc.clock_ns
        backend.memcpy(p, data, data.nbytes, "h2d")
        # 1 MB over 12 GB/s PCIe ≈ 87 µs
        assert proc.clock_ns - before > 50_000

    def test_async_memcpy_does_not_block_host(self, machine, backend):
        proc, _, _, _ = machine
        data = np.zeros(1 << 20, dtype=np.uint8)
        p = backend.malloc(data.nbytes)
        s = backend.stream_create()
        before = proc.clock_ns
        backend.memcpy(p, data, data.nbytes, "h2d", stream=s, async_=True)
        assert proc.clock_ns - before < 10_000  # just dispatch
        backend.stream_synchronize(s)
        assert proc.clock_ns - before > 50_000

    def test_bad_kind_rejected(self, backend):
        p = backend.malloc(8)
        with pytest.raises(CudaError):
            backend.memcpy(p, p, 8, "d2x")

    def test_memset(self, backend):
        p = backend.malloc(64)
        backend.memset(p, 0xAB, 64)
        assert backend.device_view(p, 64).tobytes() == b"\xab" * 64


class TestKernels:
    def test_launch_executes_content(self, backend):
        p = backend.malloc(4 * 16)
        view = backend.device_view(p, 4 * 16, np.float32)

        def k():
            view[:] = 3.0

        backend.launch("k", k, flop=16)
        assert np.all(backend.device_view(p, 4 * 16, np.float32) == 3.0)

    def test_launch_unregistered_kernel_fails(self, backend):
        with pytest.raises(CudaError):
            backend.launch("not_registered")

    def test_launch_is_async(self, machine, backend):
        proc, _, _, _ = machine
        before = proc.clock_ns
        backend.launch("k", flop=1e9)  # ~71 µs of device time on V100
        dispatch_only = proc.clock_ns - before
        assert dispatch_only < 20_000
        backend.device_synchronize()
        assert proc.clock_ns - before > 50_000

    def test_launch_counts_three_calls(self, backend):
        backend.launch("k")
        assert backend.call_counter["cudaLaunchKernel"] == 1
        assert backend.call_counter["cudaPushCallConfiguration"] == 1
        assert backend.call_counter["cudaPopCallConfiguration"] == 1

    def test_kernel_duration_override(self, machine, backend):
        proc, _, device, _ = machine
        end = backend.launch("k", duration_ns=123_456)
        assert end >= 123_456

    def test_managed_kernel_access_migrates(self, backend):
        p = backend.malloc_managed(2 * UVM_PAGE)
        rt = backend.runtime
        buf = rt.buffers[p]
        backend.launch("k", managed=[ManagedUse(p, 0, 2 * UVM_PAGE, "rw")])
        assert np.all(buf.residency == 1)  # device resident now

    def test_managed_writes_recorded(self, backend):
        p = backend.malloc_managed(UVM_PAGE)
        backend.launch("k", managed=[ManagedUse(p, 0, UVM_PAGE, "w")])
        assert len(backend.runtime.buffers[p].device_writes) == 1


class TestStreamsAndEvents:
    def test_stream_lifecycle(self, backend):
        s = backend.stream_create()
        backend.stream_destroy(s)
        with pytest.raises(CudaError):
            backend.stream_destroy(s)

    def test_cannot_destroy_default_stream(self, backend):
        with pytest.raises(CudaError):
            backend.stream_destroy(backend.runtime.default_stream)

    def test_event_elapsed_measures_kernel(self, backend):
        s = backend.stream_create()
        e1 = backend.event_create()
        e2 = backend.event_create()
        backend.event_record(e1, s)
        backend.launch("k", duration_ns=5_000_000, stream=s)
        backend.event_record(e2, s)
        assert backend.event_elapsed_ms(e1, e2) == pytest.approx(5.0, rel=0.01)

    def test_event_synchronize_blocks(self, machine, backend):
        proc, _, _, _ = machine
        s = backend.stream_create()
        e = backend.event_create()
        backend.launch("k", duration_ns=1_000_000, stream=s)
        backend.event_record(e, s)
        backend.event_synchronize(e)
        assert proc.clock_ns >= 1_000_000


class TestFatBinaries:
    def test_register_unregister(self, machine):
        from repro.cuda.interface import NativeBackend

        _, _, _, runtime = machine
        b = NativeBackend(runtime)
        fb = FatBinary("x.fatbin", ("kx",))
        h = b.register_fatbin(fb)
        b.register_function(h, "kx")
        b.launch("kx")
        b.unregister_fatbin(h)
        with pytest.raises(CudaError):
            b.launch("kx")

    def test_register_function_unknown_kernel_rejected(self, backend):
        h = backend.register_fatbin(FatBinary("y.fatbin", ("ka",)))
        with pytest.raises(CudaError):
            backend.register_function(h, "kb")

    def test_handles_are_deterministic(self):
        handles = []
        for _ in range(2):
            _, _, _, runtime = build_machine()
            h1 = runtime.cudaRegisterFatBinary(FatBinary("a", ("k1",)))
            h2 = runtime.cudaRegisterFatBinary(FatBinary("b", ("k2",)))
            handles.append((h1, h2))
        assert handles[0] == handles[1]


class TestLibraryIntegrity:
    def test_destroyed_library_rejects_calls(self, backend):
        backend.runtime.destroy()
        with pytest.raises(CudaError):
            backend.malloc(8)

    def test_restore_without_uvm_is_consistent(self):
        """Pre-CUDA-4.0 behaviour: destroy+restore works if no UVA/UVM."""
        _, _, _, rt1 = build_machine()
        rt1.cudaMalloc(64)
        snap = rt1.library_memory_snapshot()
        rt1.destroy()
        _, _, _, rt2 = build_machine()
        rt2.restore_library_memory(snap)
        rt2.cudaMalloc(64)  # works: epochs still agree (both zero)

    def test_restore_with_uvm_is_inconsistent(self):
        """§2.2: once UVA/UVM existed, restored library state cannot be
        reconciled with a fresh driver context."""
        _, _, _, rt1 = build_machine()
        rt1.cudaMallocManaged(UVM_PAGE)
        snap = rt1.library_memory_snapshot()
        rt1.destroy()
        _, _, _, rt2 = build_machine()
        rt2.restore_library_memory(snap)
        with pytest.raises(CudaError, match="INCONSISTENT"):
            rt2.cudaMalloc(64)


class TestAllocatorDeterminismAcrossInstances:
    def test_replaying_sequence_on_fresh_runtime_reproduces_addresses(self):
        """The foundation of CRAC's log-and-replay (§3.2.4)."""

        def run(seed):
            _, _, _, rt = build_machine(seed=seed)
            addrs = [rt.cudaMalloc(n) for n in (100, 4096, 1 << 20)]
            rt.cudaFree(addrs[1])
            addrs.append(rt.cudaMallocManaged(1 << 16))
            addrs.append(rt.cudaMallocHost(512))
            return addrs

        assert run(11) == run(11)

    def test_aslr_breaks_replay_determinism(self):
        """With ASLR on, the arenas land elsewhere — replay diverges."""

        def run(seed, aslr):
            _, _, _, rt = build_machine(seed=seed, aslr=aslr)
            return [rt.cudaMalloc(n) for n in (100, 4096)]

        assert run(1, True) != run(2, True)
        assert run(1, False) == run(2, False)
