"""Tests for the nvprof stand-in: call counting and the eq. 2 formula."""

import pytest

from repro.cuda.profiler import Nvprof


class TestCallCounting:
    def test_launch_counts_three_calls_total(self, backend):
        prof = Nvprof(backend)
        prof.start()
        backend.launch("k")
        rep = prof.report()
        assert rep.total_calls == 3
        assert rep.kernel_launches == 1

    def test_formula_matches_summed_counter(self, backend):
        prof = Nvprof(backend)
        prof.start()
        p = backend.malloc(64)
        for _ in range(5):
            backend.launch("k")
        backend.free(p)
        backend.device_synchronize()
        rep = prof.report()
        assert rep.total_calls == prof.total_calls_formula(rep.calls)
        assert rep.total_calls == 3 * 5 + 3  # launches + malloc/free/sync

    def test_window_excludes_prior_calls(self, backend):
        backend.malloc(64)
        prof = Nvprof(backend)
        prof.start()
        backend.launch("k")
        rep = prof.report()
        assert "cudaMalloc" not in rep.calls

    def test_cps(self, machine, backend):
        proc, _, _, _ = machine
        prof = Nvprof(backend)
        prof.start()
        for _ in range(100):
            backend.launch("k")
        backend.device_synchronize()
        rep = prof.report()
        assert rep.cps == pytest.approx(rep.total_calls / rep.exec_time_s)
        assert rep.exec_time_s > 0

    def test_note_external_calls_counted_in_profile(self, backend):
        from collections import Counter

        prof = Nvprof(backend)
        prof.start()
        backend.note_external_calls(Counter({"cudaLaunchKernel": 10}), repeats=7)
        rep = prof.report()
        assert rep.calls["cudaLaunchKernel"] == 70
