"""The cudaError_t taxonomy: classification drives the recovery ladder."""

import pytest

from repro.cuda.errors import (
    SEVERITY,
    CudaErrorCode,
    ErrorSeverity,
    classify,
    cuda_check,
    cuda_error,
)
from repro.errors import CudaError, ReproError


class TestClassify:
    def test_retryable_transport_faults(self):
        assert classify(CudaErrorCode.TRANSFER_CRC_MISMATCH) is ErrorSeverity.RETRYABLE
        assert classify(CudaErrorCode.UVM_FAULT_STORM) is ErrorSeverity.RETRYABLE

    def test_sticky_stream_poison(self):
        assert classify(CudaErrorCode.LAUNCH_TIMEOUT) is ErrorSeverity.STICKY
        assert classify(CudaErrorCode.LAUNCH_FAILURE) is ErrorSeverity.STICKY
        assert classify(CudaErrorCode.STREAM_STALLED) is ErrorSeverity.STICKY

    def test_fatal_device_loss(self):
        assert classify(CudaErrorCode.ECC_UNCORRECTABLE) is ErrorSeverity.FATAL
        assert classify(CudaErrorCode.DEVICES_UNAVAILABLE) is ErrorSeverity.FATAL
        assert classify(CudaErrorCode.HEARTBEAT_LOST) is ErrorSeverity.FATAL

    def test_program_misuse_is_not_recoverable(self):
        for code in (
            CudaErrorCode.MEMORY_ALLOCATION,
            CudaErrorCode.INVALID_VALUE,
            CudaErrorCode.INVALID_DEVICE_POINTER,
            CudaErrorCode.NOT_SUPPORTED,
        ):
            assert classify(code) is ErrorSeverity.PROGRAM

    def test_every_producible_code_is_classified(self):
        for code in CudaErrorCode:
            if code is CudaErrorCode.SUCCESS:
                continue
            assert code in SEVERITY

    def test_unknown_code_defaults_to_fatal(self):
        assert classify(object()) is ErrorSeverity.FATAL


class TestCudaError:
    def test_cuda_error_carries_code_and_severity(self):
        err = cuda_error(
            CudaErrorCode.TRANSFER_CRC_MISMATCH, "bad wire", stream_sid=3
        )
        assert isinstance(err, CudaError)
        assert isinstance(err, ReproError)
        assert err.code is CudaErrorCode.TRANSFER_CRC_MISMATCH
        assert err.severity == "retryable"
        assert err.retryable and not err.sticky and not err.fatal
        assert err.stream_sid == 3
        assert "TRANSFER_CRC_MISMATCH" in str(err)

    def test_severity_inferred_from_code(self):
        err = CudaError("ecc", code=CudaErrorCode.ECC_UNCORRECTABLE)
        assert err.fatal and err.severity == "fatal"

    def test_severity_accepts_plain_string(self):
        err = CudaError("hang", severity="sticky")
        assert err.sticky and err.code is None

    def test_cuda_check_passes_and_raises(self):
        cuda_check(True, CudaErrorCode.INVALID_VALUE, "fine")
        with pytest.raises(CudaError) as exc:
            cuda_check(False, CudaErrorCode.INVALID_VALUE, "bad arg")
        assert exc.value.code is CudaErrorCode.INVALID_VALUE
        assert exc.value.severity == "program"
