"""Tests for the cuBLAS stand-in."""

import numpy as np
import pytest

from repro.cuda.cublas import CuBlas


@pytest.fixture
def blas(backend):
    return CuBlas(backend)


def upload(backend, arr):
    p = backend.malloc(arr.nbytes)
    backend.memcpy(p, arr, arr.nbytes, "h2d")
    return p


class TestCorrectness:
    def test_sdot(self, backend, blas):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(256).astype(np.float32)
        y = rng.standard_normal(256).astype(np.float32)
        px, py = upload(backend, x), upload(backend, y)
        assert blas.sdot(px, py, 256, compute=True) == pytest.approx(
            float(x @ y), rel=1e-5
        )

    def test_sgemv(self, backend, blas):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((8, 16)).astype(np.float32)
        x = rng.standard_normal(16).astype(np.float32)
        pa, px = upload(backend, a), upload(backend, x)
        py = backend.malloc(8 * 4)
        blas.sgemv(pa, px, py, 8, 16, compute=True)
        out = np.zeros(8, dtype=np.float32)
        backend.memcpy(out, py, out.nbytes, "d2h")
        np.testing.assert_allclose(out, a @ x, rtol=1e-5)

    def test_sgemm(self, backend, blas):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((8, 4)).astype(np.float32)
        b = rng.standard_normal((4, 6)).astype(np.float32)
        pa, pb = upload(backend, a), upload(backend, b)
        pc = backend.malloc(8 * 6 * 4)
        blas.sgemm(pa, pb, pc, 8, 6, 4, compute=True)
        out = np.zeros((8, 6), dtype=np.float32)
        backend.memcpy(out, pc, out.nbytes, "d2h")
        np.testing.assert_allclose(out, a @ b, rtol=1e-4)


class TestDispatchStructure:
    def test_blas_routine_is_one_upper_call(self, backend, blas):
        before = backend.total_calls
        px = backend.malloc(1024)
        py = backend.malloc(1024)
        mallocs = backend.total_calls - before
        blas.sdot(px, py, 256)
        # one cublasSdot dispatch; internal kernel launch is library-side
        assert backend.total_calls - before - mallocs == 1
        assert backend.call_counter["cublasSdot"] == 1
        assert backend.call_counter["cudaLaunchKernel"] == 0

    def test_blas_time_scales_with_size(self, machine, backend, blas):
        proc, _, _, _ = machine
        n_small, n_big = 1 << 10, 1 << 24
        px = backend.malloc(4 * n_big)
        py = backend.malloc(4 * n_big)
        t0 = proc.clock_ns
        blas.sdot(px, py, n_small)
        t_small = proc.clock_ns - t0
        t0 = proc.clock_ns
        blas.sdot(px, py, n_big)
        t_big = proc.clock_ns - t0
        assert t_big > t_small * 5

    def test_sgemm_compute_bound_vs_sdot_memory_bound(self, machine, backend, blas):
        """sgemm native time grows ~n³ while sdot grows ~n — the reason
        Table 3's proxy overhead percentages differ so much by routine."""
        proc, _, _, _ = machine
        n = 1024
        pa = backend.malloc(4 * n * n)
        pb = backend.malloc(4 * n * n)
        pc = backend.malloc(4 * n * n)
        t0 = proc.clock_ns
        blas.sgemm(pa, pb, pc, n, n, n)
        t_gemm = proc.clock_ns - t0
        t0 = proc.clock_ns
        blas.sdot(pa, pb, n * n)
        t_dot = proc.clock_ns - t0
        assert t_gemm > 10 * t_dot
