"""Pinned vs pageable host-copy model (why samples allocate pinned)."""

import numpy as np
import pytest


def copy_time(backend, proc, host_end, nbytes, kind):
    dev = backend.malloc(nbytes)
    t0 = proc.clock_ns
    if kind == "h2d":
        backend.memcpy(dev, host_end, nbytes, "h2d")
    else:
        backend.memcpy(host_end, dev, nbytes, "d2h")
    elapsed = proc.clock_ns - t0
    backend.free(dev)
    return elapsed


class TestPinnedVsPageable:
    def test_pinned_h2d_faster_than_pageable(self, machine, backend):
        proc, *_ = machine
        n = 16 << 20
        pinned = backend.malloc_host(n)
        pageable = np.zeros(n, dtype=np.uint8)
        t_pinned = copy_time(backend, proc, pinned, n, "h2d")
        t_pageable = copy_time(backend, proc, pageable, n, "h2d")
        assert t_pageable > 1.3 * t_pinned

    def test_pinned_d2h_faster_than_pageable(self, machine, backend):
        proc, *_ = machine
        n = 16 << 20
        pinned = backend.host_alloc(n)
        pageable = np.zeros(n, dtype=np.uint8)
        t_pinned = copy_time(backend, proc, pinned, n, "d2h")
        t_pageable = copy_time(backend, proc, pageable, n, "d2h")
        assert t_pageable > 1.3 * t_pinned

    def test_d2d_unaffected(self, machine, backend):
        """Device-to-device copies never involve host staging."""
        proc, *_ = machine
        a = backend.malloc(1 << 20)
        b2 = backend.malloc(1 << 20)
        t0 = proc.clock_ns
        backend.memcpy(b2, a, 1 << 20, "d2d")
        # At HBM bandwidth, 1 MB ≈ 1.2 µs + setup.
        assert proc.clock_ns - t0 < 100_000

    def test_contents_identical_either_way(self, machine, backend):
        proc, *_ = machine
        data = np.arange(1024, dtype=np.float32)
        pinned = backend.malloc_host(data.nbytes)
        backend.device_view(pinned, data.nbytes, np.float32)[:] = data
        dev1 = backend.malloc(data.nbytes)
        dev2 = backend.malloc(data.nbytes)
        backend.memcpy(dev1, pinned, data.nbytes, "h2d")
        backend.memcpy(dev2, data, data.nbytes, "h2d")
        np.testing.assert_array_equal(
            backend.device_view(dev1, data.nbytes, np.float32),
            backend.device_view(dev2, data.nbytes, np.float32),
        )
