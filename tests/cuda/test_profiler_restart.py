"""Profiler restart-window regressions.

Two fixed bugs:

- ``Nvprof.report()`` silently dropped negative call-counter deltas
  (``if v > 0``), masking counter resets — now the window is carried
  forward via ``reattach``/``on_restart`` and an *unexplained* backwards
  counter raises instead of under-reporting;
- ``TimelineReport.span_ns`` was ``max(end) - min(start)`` over all
  events, which produced garbage across a restart splice and a
  zero-division-adjacent mess on empty/single-event traces — now each
  splice segment contributes its own span.
"""

from collections import Counter
from types import SimpleNamespace

import pytest

from repro.cuda.profiler import Nvprof, TimelineReport
from repro.errors import CudaError


class TestWindowCarry:
    def test_unexplained_backwards_counter_raises(self, backend):
        prof = Nvprof(backend)
        prof.start()
        backend.launch("k")
        backend.call_counter.clear()  # reset without a reattach
        with pytest.raises(CudaError) as exc:
            prof.report()
        assert "went backwards" in str(exc.value)
        assert "reattach" in str(exc.value)

    def test_reattach_carries_window_across_counter_reset(self, backend):
        prof = Nvprof(backend)
        prof.start()
        for _ in range(3):
            backend.launch("k")
        prof.reattach(backend)  # fold at the cut...
        backend.call_counter.clear()  # ...then the counter may reset
        prof._start_calls = Counter(backend.call_counter)
        for _ in range(2):
            backend.launch("k")
        rep = prof.report()
        assert rep.kernel_launches == 5
        assert rep.total_calls == 15  # 5 launches x 3 calls
        assert rep.restarts == 1

    def test_reattach_with_unchanged_counter_is_lossless(self, backend):
        prof = Nvprof(backend)
        prof.start()
        backend.launch("k")
        before = prof.report().total_calls
        prof.reattach(backend)
        prof.reattach(backend)
        rep = prof.report()
        assert rep.total_calls == before
        assert rep.restarts == 2

    def test_exec_time_spans_the_whole_window(self, backend):
        prof = Nvprof(backend)
        t_start = backend.process.clock_ns
        prof.start()
        backend.launch("k")
        backend.device_synchronize()
        t_fold = backend.process.clock_ns
        prof.reattach(backend)
        backend.process.advance(1e6)  # restart downtime
        backend.launch("k")
        rep = prof.report()
        assert rep.exec_time_s * 1e9 >= (t_fold - t_start) + 1e6
        assert rep.cps == pytest.approx(
            rep.total_calls / rep.exec_time_s
        )

    def test_start_discards_carry(self, backend):
        prof = Nvprof(backend)
        prof.start()
        backend.launch("k")
        prof.reattach(backend)
        prof.start()  # a fresh window forgets the carried fold
        backend.launch("k")
        rep = prof.report()
        assert rep.kernel_launches == 1
        assert rep.restarts == 0


class TestSpliceAwareTimeline:
    def test_empty_timeline_is_well_defined(self, backend):
        prof = Nvprof(backend)
        prof.enable_timeline()
        rep = prof.timeline_report()
        assert rep == TimelineReport(0.0, 0.0, 0.0, {}, 0, segments=0)
        assert rep.kernel_utilization == 0.0

    def test_single_event_trace(self, backend):
        prof = Nvprof(backend)
        prof.enable_timeline()
        backend.launch("k", duration_ns=5_000.0)
        rep = prof.timeline_report()
        assert rep.events == 1
        assert rep.segments == 1
        assert rep.span_ns == pytest.approx(5_000.0)
        assert rep.kernel_busy_ns == pytest.approx(5_000.0)

    def test_span_sums_per_segment_not_across_the_cut(self, backend):
        prof = Nvprof(backend)
        prof.enable_timeline()
        backend.launch("k", duration_ns=5_000.0)
        backend.device_synchronize()
        # Simulate a restart: the old device objects (with their traces)
        # are replaced by fresh untraced ones.
        old_devices = [
            SimpleNamespace(trace=list(dev.trace))
            for dev in backend.runtime.devices
        ]
        for dev in backend.runtime.devices:
            dev.disable_trace()
        prof.on_restart(backend, old_devices)
        backend.process.advance(1e9)  # downtime must not inflate span
        backend.launch("k2", duration_ns=7_000.0)
        rep = prof.timeline_report()
        assert rep.segments == 2
        assert rep.events == 2
        assert rep.span_ns == pytest.approx(12_000.0)
        assert rep.kernel_busy_ns == pytest.approx(12_000.0)
        naive = 1e9  # the old max(end)-min(start) would exceed this
        assert rep.span_ns < naive

    def test_on_restart_reenables_tracing_on_new_devices(self, backend):
        prof = Nvprof(backend)
        prof.enable_timeline()
        backend.launch("k", duration_ns=1_000.0)
        old_devices = [
            SimpleNamespace(trace=list(dev.trace))
            for dev in backend.runtime.devices
        ]
        for dev in backend.runtime.devices:
            dev.disable_trace()  # a fresh lower half starts untraced
        prof.on_restart(backend, old_devices)
        assert all(dev.trace is not None for dev in backend.runtime.devices)
        assert prof.timeline_report().events == 1  # archive kept

    def test_report_without_enable_still_raises(self, backend):
        prof = Nvprof(backend)
        with pytest.raises(CudaError):
            prof.timeline_report()
