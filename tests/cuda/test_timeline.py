"""Tests for GPU timeline tracing (nvprof --print-gpu-trace model)."""

import numpy as np
import pytest

from repro.errors import CudaError
from repro.cuda.profiler import Nvprof


@pytest.fixture
def prof(backend):
    p = Nvprof(backend)
    p.enable_timeline()
    return p


class TestTraceRecording:
    def test_kernels_recorded_with_names(self, backend, prof):
        backend.launch("k", duration_ns=1000)
        backend.launch("k2", duration_ns=2000)
        backend.device_synchronize()
        rep = prof.timeline_report()
        assert rep.kernels["k"].count == 1
        assert rep.kernels["k2"].total_ns == 2000

    def test_copies_recorded(self, backend, prof):
        data = np.zeros(1024, dtype=np.uint8)
        p = backend.malloc(1024)
        backend.memcpy(p, data, 1024, "h2d")
        rep = prof.timeline_report()
        assert rep.copy_busy_ns > 0
        assert rep.events >= 1

    def test_events_time_ordered_per_stream(self, backend, prof):
        s = backend.stream_create()
        for _ in range(5):
            backend.launch("k", duration_ns=1000, stream=s)
        backend.device_synchronize()
        trace = backend.runtime.device.trace
        stream_events = [e for e in trace if e.stream_sid == s.sid]
        for a, b in zip(stream_events, stream_events[1:]):
            assert b.start_ns >= a.end_ns

    def test_concurrent_streams_overlap_in_trace(self, backend, prof):
        s1, s2 = backend.stream_create(), backend.stream_create()
        backend.launch("k", duration_ns=10_000, stream=s1)
        backend.launch("k2", duration_ns=10_000, stream=s2)
        backend.device_synchronize()
        trace = backend.runtime.device.trace
        k = [e for e in trace if e.kind == "kernel"]
        assert k[0].start_ns < k[1].end_ns and k[1].start_ns < k[0].end_ns

    def test_utilization_over_one_with_concurrency(self, backend, prof):
        streams = [backend.stream_create() for _ in range(8)]
        for s in streams:
            backend.launch("k", duration_ns=100_000, stream=s)
        backend.device_synchronize()
        rep = prof.timeline_report()
        assert rep.kernel_utilization > 4.0  # 8 concurrent kernels

    def test_report_without_enable_raises(self, backend):
        prof = Nvprof(backend)
        with pytest.raises(CudaError):
            prof.timeline_report()

    def test_empty_trace_report(self, backend, prof):
        rep = prof.timeline_report()
        assert rep.events == 0
        assert rep.kernel_utilization == 0.0

    def test_disable_trace(self, backend, prof):
        backend.runtime.device.disable_trace()
        backend.launch("k")
        assert backend.runtime.device.trace is None

    def test_mean_duration(self, backend, prof):
        backend.launch("k", duration_ns=1000)
        backend.launch("k", duration_ns=3000)
        backend.device_synchronize()
        rep = prof.timeline_report()
        assert rep.kernels["k"].mean_ns == 2000
