"""Wiring-pass coverage: the inventory must see every live cuda* API."""

import inspect

from repro.analysis.engine import analyze_package
from repro.analysis.findings import RULE_CODES, Finding
from repro.cuda.api import CudaRuntime
from repro.cuda.errors import CudaErrorCode, classify


def runtime_api_names():
    """Every public ``cuda*`` method the runtime actually exposes."""
    return {
        name
        for name, member in inspect.getmembers(
            CudaRuntime, predicate=inspect.isfunction
        )
        if name.startswith("cuda")
    }


def test_inventory_covers_every_runtime_api():
    # Completeness: the static extractor and the live class must agree,
    # or the wiring pass is silently skipping trampoline methods.
    report = analyze_package()
    seen = {record["name"] for record in report["inventory"]}
    missing = runtime_api_names() - seen
    assert not missing, f"wiring pass missed runtime APIs: {sorted(missing)}"


def test_inventory_records_are_well_formed():
    report = analyze_package()
    for record in report["inventory"]:
        assert record["name"].startswith("cuda")
        assert isinstance(record["entries"], list)
        assert isinstance(record["dispatched"], bool)
        assert record["call_sites"] >= 0


def test_every_rule_routes_through_the_error_taxonomy():
    # Severity is derived, never free-form: each rule maps to a
    # CudaErrorCode and classify() decides how bad it is.
    for rule, code in RULE_CODES.items():
        assert isinstance(code, CudaErrorCode)
        f = Finding("wiring", rule, "repro/x.py", 1, "m")
        assert f.severity is classify(code)


def test_unknown_rule_defaults_to_program_severity():
    f = Finding("wiring", "wiring/not-a-rule", "repro/x.py", 1, "m")
    assert f.code is CudaErrorCode.INVALID_VALUE
