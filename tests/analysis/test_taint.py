"""Replay-determinism taint pass: flows, strong updates, lifecycles."""

import textwrap

from repro.analysis.engine import analyze_sources


def det_rules(source, rel="repro/core/session.py"):
    findings = analyze_sources({rel: textwrap.dedent(source)})
    return sorted(f.rule for f in findings if f.rule.startswith("det/"))


class TestNondetFlows:
    def test_aliased_wall_clock_into_launch(self):
        assert "det/nondet-into-kernel" in det_rules("""\
            from time import time as now

            def run(rt, kernel):
                t = now()
                rt.launch(kernel, t)
            """)

    def test_nondet_through_arithmetic(self):
        assert "det/nondet-into-kernel" in det_rules("""\
            import time

            def run(rt, kernel):
                seed = int(time.time()) % 1000
                rt.launch(kernel, seed)
            """)

    def test_np_random_into_capture_digest(self):
        assert "det/nondet-into-capture" in det_rules("""\
            import numpy.random as npr
            import zlib

            def capture(plugin):
                pad = npr.rand(16)
                plugin.add_blob("crac/pad", zlib.crc32(pad))
            """)

    def test_strong_update_clears_taint(self):
        # Reassigning the variable to a constant before the sink is a
        # strong update: the tainted value never reaches the kernel.
        rules = det_rules("""\
            import time

            def bench(rt, kernel):
                t = time.time()  # lint: allow
                t = 0
                rt.launch(kernel, t)
            """)
        assert "det/nondet-into-kernel" not in rules


class TestLifecycles:
    def test_unseeded_default_rng(self):
        assert det_rules("""\
            import numpy as np

            def draw():
                rng = np.random.default_rng()
                return rng.normal()
            """) == ["det/unseeded-rng"]

    def test_seeded_rng_is_clean(self):
        assert det_rules("""\
            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                return rng.normal()
            """) == []

    def test_stream_use_after_destroy(self):
        assert det_rules("""\
            def teardown(rt, kernel):
                s = rt.cudaStreamCreate()
                rt.cudaStreamDestroy(s)
                rt.launch(kernel, stream=s)
            """) == ["det/use-after-destroy"]

    def test_launch_unsynced_before_checkpoint(self):
        assert "det/unsynced-launch" in det_rules("""\
            def cut(rt, mgr, kernel):
                rt.launch(kernel)
                mgr.checkpoint()
            """)

    def test_launch_synced_before_checkpoint_is_clean(self):
        assert det_rules("""\
            def cut(rt, mgr, kernel):
                rt.launch(kernel)
                rt.cudaDeviceSynchronize()
                mgr.checkpoint()
            """) == []

    def test_device_pointer_escape_to_module_global(self):
        assert "det/pointer-escape" in det_rules("""\
            _CACHE = {}

            def alloc(rt, key, nbytes):
                ptr = rt.cudaMalloc(nbytes)
                _CACHE[key] = ptr
                return ptr
            """)
