"""Baseline machinery: the committed repo is clean, split() is exact."""

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.engine import BASELINE_PATH, analyze_package
from repro.analysis.findings import RULE_CODES, Baseline, Finding, to_sarif

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_is_clean_against_committed_baseline():
    # The CI gate in one assertion: with the committed baseline loaded,
    # the shipped tree has zero unbaselined findings and no stale
    # baseline entries masking fixed ones.
    baseline = Baseline.load(REPO_ROOT / BASELINE_PATH)
    report = analyze_package(baseline=baseline)
    assert report["ok"] is True, report["findings"]
    assert report["unused_baseline"] == []


def test_committed_baseline_entries_are_justified():
    baseline = Baseline.load(REPO_ROOT / BASELINE_PATH)
    assert baseline.entries, "expected a non-empty committed baseline"
    for entry in baseline.entries.values():
        assert entry["justification"].strip()
        assert "TODO" not in entry["justification"]


findings_st = st.lists(
    st.builds(
        Finding,
        analyzer=st.just("wiring"),
        rule=st.sampled_from(sorted(RULE_CODES)),
        path=st.sampled_from(["repro/a.py", "repro/b.py", "repro/c.py"]),
        line=st.integers(min_value=1, max_value=500),
        message=st.text(
            alphabet=st.characters(codec="ascii", categories=["L", "N"]),
            min_size=1,
            max_size=12,
        ),
    ),
    max_size=12,
    unique_by=lambda f: f.fingerprint,
)


@settings(max_examples=50, deadline=None)
@given(findings=findings_st, data=st.data())
def test_baseline_split_partitions_exactly(findings, data):
    accepted = data.draw(st.sets(st.sampled_from(findings))
                         if findings else st.just(set()))
    baseline = Baseline()
    for f in accepted:
        baseline.add(f, "planted justification")
    unbaselined, baselined, unused = baseline.split(findings)
    # split() is a partition of the findings list...
    assert len(unbaselined) + len(baselined) == len(findings)
    assert {f.fingerprint for f in baselined} == {
        f.fingerprint for f in accepted
    }
    assert not {f.fingerprint for f in unbaselined} & {
        f.fingerprint for f in accepted
    }
    # ...and every accepted finding is live, so nothing reads as stale.
    assert unused == []


@settings(max_examples=25, deadline=None)
@given(findings=findings_st)
def test_baseline_save_load_round_trip(findings, tmp_path_factory):
    path = tmp_path_factory.mktemp("baseline") / "baseline.json"
    baseline = Baseline()
    for f in findings:
        baseline.add(f, f"accepted: {f.rule}")
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.entries == baseline.entries
    # Fingerprints ignore the line number: a pure reformat never
    # invalidates a committed baseline entry.
    moved = [
        Finding(f.analyzer, f.rule, f.path, f.line + 7, f.message)
        for f in findings
    ]
    unbaselined, baselined, _ = loaded.split(moved)
    assert unbaselined == []
    assert len(baselined) == len(moved)


def test_missing_baseline_file_is_empty():
    assert Baseline.load("/nonexistent/baseline.json").entries == {}


def test_sarif_export_shape():
    f = Finding("lint", "lint/raw-raise", "repro/cuda/api.py", 3, "boom")
    sarif = to_sarif([f])
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert [r["ruleId"] for r in run["results"]] == ["lint/raw-raise"]
    loc = run["results"][0]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "repro/cuda/api.py"
    assert loc["region"]["startLine"] == 3
