"""Import-binding resolution: aliases back to canonical dotted origins."""

import ast

from repro.analysis.bindings import ImportBindings


def bindings(source: str) -> ImportBindings:
    return ImportBindings.collect(ast.parse(source))


def test_from_import_binds_qualified_origin():
    b = bindings("from time import time\n")
    assert b.resolve(["time"]) == ["time", "time"]


def test_from_import_with_asname():
    b = bindings("from time import perf_counter as clock\n")
    assert b.resolve(["clock"]) == ["time", "perf_counter"]


def test_dotted_import_with_asname():
    b = bindings("import numpy.random as npr\n")
    assert b.resolve(["npr", "random"]) == ["numpy", "random", "random"]


def test_plain_dotted_import_binds_root_only():
    # `import a.b` puts only `a` in the namespace; `a.b.c()` chains
    # resolve through the root, unchanged.
    b = bindings("import numpy.random\n")
    assert b.resolve(["numpy", "random", "rand"]) == [
        "numpy", "random", "rand",
    ]


def test_np_alias_is_canonicalised():
    b = bindings("import numpy as np\n")
    assert b.resolve(["np", "random", "rand"]) == ["numpy", "random", "rand"]


def test_relative_import_resolves_to_nothing():
    b = bindings("from .clock import time\n")
    assert b.resolve(["time"]) == ["time"]


def test_unbound_head_passes_through():
    b = bindings("")
    assert b.resolve(["time", "time"]) == ["time", "time"]
    assert b.resolve([]) == []
