"""Planted-corpus gate: every violation detected, every control clean."""

import pytest

from repro.analysis.corpus import SCENARIOS
from repro.analysis.engine import analyze_sources, run_corpus_gate

POSITIVES = [s for s in SCENARIOS if s.expect is not None]
NEGATIVES = [s for s in SCENARIOS if s.expect is None]


def test_corpus_is_large_enough():
    assert len(POSITIVES) >= 10
    assert len(NEGATIVES) >= 4


def test_every_rule_has_a_planted_scenario():
    # One positive per rule family keeps the detectors honest: a rule
    # with no scenario could silently stop firing.
    expected = {s.expect for s in POSITIVES}
    assert len(expected) == len(POSITIVES), "duplicate expected rules"


@pytest.mark.parametrize("scenario", POSITIVES, ids=lambda s: s.name)
def test_planted_violation_detected(scenario):
    findings = analyze_sources(scenario.files)
    rules = {f.rule for f in findings}
    assert scenario.expect in rules, (
        f"{scenario.name}: expected {scenario.expect}, got {sorted(rules)}"
    )


@pytest.mark.parametrize("scenario", NEGATIVES, ids=lambda s: s.name)
def test_negative_control_is_clean(scenario):
    findings = analyze_sources(scenario.files)
    assert findings == [], (
        f"{scenario.name}: false positives "
        f"{[f.describe() for f in findings]}"
    )


def test_gate_report_shape():
    report = run_corpus_gate()
    assert report["ok"] is True
    assert report["detection_rate"] == 1.0
    assert report["false_positives"] == 0
    assert report["positives"] == len(POSITIVES)
    assert len(report["scenarios"]) == len(SCENARIOS)
    assert all(row["ok"] for row in report["scenarios"])
