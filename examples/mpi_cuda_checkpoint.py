#!/usr/bin/env python
"""Hybrid MPI+CUDA checkpointing — the paper's §6 proof of principle.

Three MPI ranks on one node, each with its own CRAC session (its own
upper/lower halves and CUDA library), cooperate on a distributed Jacobi
solve with GPU compute and halo exchange. Mid-run, the DMTCP coordinator
takes a *coordinated* checkpoint of all ranks; the whole job is killed
and restarted; the solve finishes with results bit-identical to an
uninterrupted run.

Run:  python examples/mpi_cuda_checkpoint.py
"""

from repro.mpi import MpiJacobi, MpiWorld


def main() -> None:
    print("reference: uninterrupted 3-rank MPI+CUDA Jacobi solve")
    ref_world = MpiWorld(3)
    ref = MpiJacobi(ref_world, rows_per_rank=16, cols=32, iterations=24,
                    seed=1)
    r0 = ref.residual()
    ref_digest = ref.run()
    print(f"   residual {r0:.3e} → {ref.residual():.3e} "
          f"(virtual time {ref_world.max_clock_s():.3f} s)")

    print("fault-tolerant run: coordinated checkpoint at iteration 12")
    world = MpiWorld(3)
    jacobi = MpiJacobi(world, rows_per_rank=16, cols=32, iterations=24,
                       seed=1)
    digest = jacobi.run(checkpoint_at_iter=12)

    for r in world.ranks:
        (report,) = r.session.restarts
        print(f"   rank {r.rank}: restarted in "
              f"{report.restart_time_ns / 1e6:.0f} ms "
              f"({report.replayed_calls} calls replayed)")
    assert digest == ref_digest
    print("all ranks restarted; global result identical ✓")


if __name__ == "__main__":
    main()
