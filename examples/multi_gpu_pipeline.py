#!/usr/bin/env python
"""Multi-GPU pipeline under CRAC (the paper's 4×V100 nodes, §4.1).

A data-parallel stencil pipeline over all four GPUs of one node: each
GPU owns a tile, iterates a smoothing kernel on its own stream, and
exchanges tile borders through peer copies. Mid-run the whole process is
checkpointed, killed, and restarted — every tile comes back on its
original GPU, at its original address, with the cudaSetDevice state and
all four streams intact.

Run:  python examples/multi_gpu_pipeline.py
"""

import numpy as np

from repro.core import CracSession
from repro.cuda.api import FatBinary

N_GPUS = 4
TILE = 64  # floats per tile
ITERS = 30

FATBIN = FatBinary("pipeline.fatbin", ("smooth",))


def main() -> None:
    session = CracSession(seed=5, n_gpus=N_GPUS)
    b = session.backend
    b.register_app_binary(FATBIN)
    print(f"node with {b.get_device_count()} GPUs "
          f"({session.runtime.devices[0].spec.name})")

    # One tile + one stream per GPU.
    tiles, streams = [], []
    rng = np.random.default_rng(7)
    for dev in range(N_GPUS):
        b.set_device(dev)
        ptr = b.malloc(4 * TILE)
        data = rng.random(TILE).astype(np.float32)
        b.memcpy(ptr, data, data.nbytes, "h2d")
        tiles.append(ptr)
        streams.append(b.stream_create())
    b.set_device(0)

    def smooth(dev):
        def fn():
            t = b.device_view(tiles[dev], 4 * TILE, np.float32)
            t[1:-1] = 0.25 * t[:-2] + 0.5 * t[1:-1] + 0.25 * t[2:]
        return fn

    checkpointed = False
    for it in range(ITERS):
        for dev in range(N_GPUS):
            b.launch("smooth", smooth(dev), stream=streams[dev],
                     flop=3.0 * TILE)
        for dev in range(N_GPUS):
            b.stream_synchronize(streams[dev])
        # Ring exchange of tile borders via peer copies.
        for dev in range(N_GPUS):
            b.memcpy_peer(tiles[(dev + 1) % N_GPUS], tiles[dev], 4)

        if it == ITERS // 2 and not checkpointed:
            image = session.checkpoint()
            session.kill()
            report = session.restart(image)
            checkpointed = True
            print(f"mid-run checkpoint at iteration {it}: "
                  f"{image.size_bytes >> 20} MB, restart "
                  f"{report.restart_time_ns / 1e6:.0f} ms, "
                  f"{report.adopted_streams} streams re-adopted on "
                  f"{N_GPUS} GPUs")

    sums = []
    for dev in range(N_GPUS):
        t = b.device_view(tiles[dev], 4 * TILE, np.float32)
        sums.append(float(t.sum()))
        assert b.runtime.buffers[tiles[dev]].device_index == dev
    print("per-GPU tile checksums after restart:",
          " ".join(f"{s:.4f}" for s in sums))
    print(f"virtual time: {session.process.clock_ns / 1e9:.3f} s ✓")


if __name__ == "__main__":
    main()
