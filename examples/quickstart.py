#!/usr/bin/env python
"""Quickstart: run a CUDA app natively and under CRAC, then checkpoint,
kill, and restart it mid-run — and verify the output is bit-identical.

Run:  python examples/quickstart.py
"""

from repro.apps.rodinia import Hotspot
from repro.harness import Machine, run_app


def main() -> None:
    machine = Machine.v100()
    scale = 0.1  # ~0.4 s of virtual time; use 1.0 for the paper's config

    print("1) native run (the baseline)")
    native = run_app(Hotspot(scale=scale), machine, mode="native", noise=False)
    print(f"   runtime: {native.runtime_s:.3f} s (virtual), "
          f"{native.cuda_calls} CUDA calls, {native.cps:,.0f} calls/s")

    print("2) the same app under CRAC (trampoline + interposition)")
    crac = run_app(Hotspot(scale=scale), machine, mode="crac", noise=False)
    print(f"   runtime: {crac.runtime_s:.3f} s — "
          f"overhead {crac.overhead_pct(native):+.2f}%")
    assert crac.digest == native.digest, "CRAC must not change results!"
    print("   output digest identical to native ✓")

    print("3) checkpoint mid-run, kill the process, restart, and finish")
    survived = run_app(
        Hotspot(scale=scale), machine, mode="crac",
        checkpoint_at=0.5, noise=False,
    )
    (rec,) = survived.checkpoints
    print(f"   checkpoint: {rec.checkpoint_s * 1e3:.1f} ms, "
          f"image {rec.size_mb:.1f} MB")
    print(f"   restart:    {rec.restart_s * 1e3:.1f} ms "
          f"({rec.replayed_calls} cudaMalloc-family calls replayed)")
    assert survived.digest == native.digest
    print("   output after kill+restart identical to native ✓")


if __name__ == "__main__":
    main()
