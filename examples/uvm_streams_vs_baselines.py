#!/usr/bin/env python
"""Why CRAC, and not the earlier systems (paper §1/§2).

This demo runs the same UVM + multi-stream access pattern — two CUDA
streams whose kernels write the same managed page concurrently, the
pattern of HYPRE-class applications — against every generation of CUDA
checkpointing:

- CheCUDA (pre-CUDA-4.0 destroy-and-restore): cannot restore UVA state;
- CRCUDA (proxy, no UVM): cannot even allocate managed memory;
- CRUM (proxy + shadow pages): rejects concurrent same-page writers;
- CRAC: runs it, checkpoints it, and restarts it.

Run:  python examples/uvm_streams_vs_baselines.py
"""

from repro.core import CracSession
from repro.core.halves import SplitProcess
from repro.cuda.api import FatBinary, ManagedUse
from repro.errors import CudaError, UnsupportedFeatureError
from repro.gpu.uvm import UVM_PAGE
from repro.proxy import CheCudaCheckpointer, CrcudaBackend, CrumBackend

FATBIN = FatBinary("demo.fatbin", ("writer",))


def concurrent_uvm_writers(backend) -> None:
    """Two streams, same managed page, overlapping in time."""
    ptr = backend.malloc_managed(UVM_PAGE)
    s1, s2 = backend.stream_create(), backend.stream_create()
    backend.launch("writer", duration_ns=1_000_000, stream=s1,
                   managed=[ManagedUse(ptr, 0, UVM_PAGE, "w")])
    backend.launch("writer", duration_ns=1_000_000, stream=s2,
                   managed=[ManagedUse(ptr, 0, UVM_PAGE, "w")])
    backend.device_synchronize()


def main() -> None:
    print("— CheCUDA (2009): destroy/restore + BLCR —")
    split = SplitProcess(seed=1)
    from repro.cuda.interface import NativeBackend

    backend = NativeBackend(split.runtime)
    backend.register_app_binary(FATBIN)
    che = CheCudaCheckpointer(split.runtime)
    p = backend.malloc_managed(UVM_PAGE)
    che.note_alloc("managed", UVM_PAGE, p)
    image = che.checkpoint()
    fresh = SplitProcess(seed=1).runtime
    try:
        che.restart(image, fresh)
        print("   unexpectedly survived?!")
    except CudaError as e:
        print(f"   restart FAILED as the paper describes: {e}")

    print("— CRCUDA (2016): proxy, no UVM —")
    split = SplitProcess(seed=2)
    crcuda = CrcudaBackend(split.runtime)
    crcuda.register_app_binary(FATBIN)
    try:
        concurrent_uvm_writers(crcuda)
    except UnsupportedFeatureError as e:
        print(f"   FAILED: {e}")

    print("— CRUM (2018): proxy + shadow pages —")
    split = SplitProcess(seed=3)
    crum = CrumBackend(split.runtime)
    crum.register_app_binary(FATBIN)
    try:
        concurrent_uvm_writers(crum)
    except UnsupportedFeatureError as e:
        print(f"   FAILED: {e}")

    print("— CRAC (2020): split process, single address space —")
    session = CracSession(seed=4)
    session.backend.register_app_binary(FATBIN)
    concurrent_uvm_writers(session.backend)
    image = session.checkpoint()
    session.kill()
    report = session.restart(image)
    print(f"   ran, checkpointed ({image.size_bytes >> 20} MB) and "
          f"restarted ({report.restart_time_ns / 1e6:.0f} ms, "
          f"{report.adopted_streams} streams recreated) ✓")


if __name__ == "__main__":
    main()
