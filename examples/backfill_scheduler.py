#!/usr/bin/env python
"""Backfill scheduling with transparent preemption (paper §1(c)).

A batch scheduler backfills a GPU node with a low-priority HPGMG job.
When a high-priority job arrives, the scheduler *immediately* preempts:
CRAC checkpoints the running job at the next CUDA call, the node runs
the urgent job, and the backfilled job later resumes exactly where it
stopped — something impossible with application-level checkpointing,
which can only save at its own outer-loop boundaries.

Run:  python examples/backfill_scheduler.py
"""

from repro.apps import Hpgmg
from repro.apps.rodinia import Hotspot
from repro.harness import Machine, run_app


def main() -> None:
    machine = Machine.v100()

    print("reference run of the backfilled job (HPGMG-FV)")
    reference = run_app(Hpgmg(scale=0.01), machine, mode="native", noise=False)

    print("backfill: HPGMG starts; high-priority job arrives at ~40%")
    backfilled = run_app(
        Hpgmg(scale=0.01), machine, mode="crac",
        checkpoint_at=0.4, noise=False,
    )
    (rec,) = backfilled.checkpoints
    print(f"   preemption checkpoint: {rec.checkpoint_s * 1e3:.0f} ms "
          f"({rec.size_mb:.0f} MB written)")

    print("   node runs the high-priority job (Hotspot) ...")
    urgent = run_app(Hotspot(scale=0.05), machine, mode="native", noise=False)
    print(f"   high-priority job done in {urgent.runtime_s:.2f} s (virtual)")

    print(f"   backfilled job restarted: {rec.restart_s * 1e3:.0f} ms "
          f"({rec.replayed_calls} allocation calls replayed)")
    assert backfilled.digest == reference.digest
    print("backfilled job finished with identical results ✓")

    total_lost = rec.checkpoint_s + rec.restart_s
    print(f"preemption cost: {total_lost:.2f} s of virtual time — "
          f"vs killing and re-running the job from scratch "
          f"({reference.runtime_s:.2f} s)")


if __name__ == "__main__":
    main()
