#!/usr/bin/env python
"""GPU soft errors and checkpoint economics (paper §1(b)).

The paper motivates CRAC with the literature on GPU soft errors: NVIDIA
GPUs lack the RAM protection of high-end host memory, and at cluster
scale the *system* mean-time-between-failures shrinks linearly with GPU
count. This example:

1. measures CRAC's actual checkpoint/restart costs on LULESH (from the
   reproduction's cost model);
2. derives Young's/Daly's optimal checkpoint interval for several
   cluster sizes;
3. Monte-Carlo-simulates a 24-hour job with and without CRAC
   checkpointing at those rates.

Run:  python examples/soft_error_fault_tolerance.py
"""

from repro.apps import Lulesh
from repro.harness import Machine, run_app
from repro.harness.fault_tolerance import (
    FaultSimulator,
    daly_interval,
    expected_completion_time,
    young_interval,
)


def main() -> None:
    print("measuring CRAC checkpoint/restart costs on LULESH ...")
    res = run_app(
        Lulesh(scale=0.05), Machine.v100(), mode="crac",
        checkpoint_at=0.5, noise=False,
    )
    (rec,) = res.checkpoints
    c, r = rec.checkpoint_s, rec.restart_s
    print(f"   checkpoint {c:.2f} s, restart {r:.2f} s "
          f"({rec.size_mb:.0f} MB image)\n")

    work_s = 24 * 3600.0  # a day-long job
    per_gpu_mtbf = 50_000.0 * 3600.0  # ~50K GPU-hours between soft errors

    print(f"{'GPUs':>6} {'MTBF(h)':>9} {'Young τ(min)':>13} "
          f"{'Daly τ(min)':>12} {'E[makespan](h)':>15} {'no-ckpt(h)':>11}")
    for gpus in (64, 512, 4096):
        mtbf = per_gpu_mtbf / gpus
        tau_y = young_interval(c, mtbf)
        tau_d = daly_interval(c, mtbf)
        with_ckpt = expected_completion_time(work_s, tau_d, c, r, mtbf) / 3600
        sim = FaultSimulator(mtbf, seed=gpus)
        without = sim.mean_makespan(work_s, None, 0.0, r, runs=8) / 3600
        print(f"{gpus:>6} {mtbf / 3600:>9.1f} {tau_y / 60:>13.1f} "
              f"{tau_d / 60:>12.1f} {with_ckpt:>15.2f} {without:>11.1f}")

    print("\nwith CRAC's sub-second checkpoints, even a 4096-GPU job "
          "finishes near its fault-free time;\nwithout checkpointing the "
          "expected makespan diverges (restart-from-scratch loops).")


if __name__ == "__main__":
    main()
