#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation (§4).

Run:  python examples/reproduce_paper.py [scale]

``scale`` defaults to 0.05 (a few seconds of wall time); use 1.0 for the
paper-scale configuration the benchmark suite runs.
"""

import sys

from repro.harness.report import render_all


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"regenerating all tables/figures at scale={scale}\n")
    print(render_all(scale=scale))


if __name__ == "__main__":
    main()
