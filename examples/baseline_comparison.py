#!/usr/bin/env python
"""Every generation of CUDA checkpointing on one workload.

Runs Hotspot (and the cuBLAS 10 MB Sdot loop) under native, CRAC, CRUM,
the naive CMA proxy, and CRCUDA, printing the condensed form of the
paper's comparison: identical results everywhere, wildly different
costs and capabilities.

Run:  python examples/baseline_comparison.py
"""

from repro.apps import CublasMicro
from repro.harness import run_app
from repro.harness.experiments import baseline_matrix
from repro.harness.report import render_table


def main() -> None:
    print(render_table(
        "Hotspot under every dispatcher", baseline_matrix(scale=0.2), "system"
    ))

    print("\ncuBLAS Sdot, 10 MB operands (the Table 3 regime):")
    native = run_app(
        CublasMicro(scale=0.01, routine="sdot", data_mb=10), noise=False
    )
    for mode in ("native", "crac", "crum", "proxy-cma"):
        res = run_app(
            CublasMicro(scale=0.01, routine="sdot", data_mb=10),
            mode=mode, noise=False,
        )
        ms = res.extras["ms_per_call"]
        ovh = (ms - native.extras["ms_per_call"]) / native.extras["ms_per_call"]
        print(f"  {mode:<10} {ms:8.4f} ms/call  ({ovh:+8.1%})")
    print("\nsingle address space (CRAC) passes pointers; proxies copy "
          "buffers — that is the whole paper in two numbers.")


if __name__ == "__main__":
    main()
