#!/usr/bin/env python
"""Spot-instance migration: the paper's §1(d) motivation.

A long-running LULESH job is running on a cloud spot instance. The
instance is reclaimed with (almost) no warning: CRAC takes an on-demand
checkpoint at the next CUDA call boundary, the process dies, and the job
resumes on a *new* instance (fresh process, fresh lower half, fresh GPU
context) — finishing with output bit-identical to an uninterrupted run.

Application-specific checkpointing cannot do this: it can only save at
outer-loop boundaries chosen at development time, which is incompatible
with on-demand eviction (§1).

Run:  python examples/spot_instance_migration.py
"""

from repro.apps import Lulesh
from repro.harness import Machine, run_app


def main() -> None:
    scale = 0.05
    print("reference: uninterrupted LULESH run")
    reference = run_app(Lulesh(scale=scale), Machine.v100(), mode="native",
                        noise=False)
    print(f"   virtual runtime {reference.runtime_s:.2f} s, "
          f"{reference.cuda_calls} CUDA calls")

    print("spot run: eviction notice arrives ~30% into the job")
    spot = run_app(
        Lulesh(scale=scale), Machine.v100(), mode="crac",
        checkpoint_at=0.3, noise=False,
    )
    (rec,) = spot.checkpoints
    print(f"   eviction at progress {rec.at_progress:.0%}")
    print(f"   on-demand checkpoint: {rec.checkpoint_s * 1e3:.0f} ms, "
          f"{rec.size_mb:.0f} MB image")
    print(f"   ... instance reclaimed; process killed ...")
    print(f"   restart on the new instance: {rec.restart_s * 1e3:.0f} ms "
          f"({rec.replayed_calls} allocation calls replayed, "
          f"{spot.extras.get('streams', 8)} streams recreated)")

    assert spot.digest == reference.digest
    print("job completed; results identical to the uninterrupted run ✓")


if __name__ == "__main__":
    main()
